//! Flow networks with finite and infinite capacities.

use std::fmt;

/// Identifier of a vertex of a flow network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an edge of a flow network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The capacity of an edge: a finite non-negative integer or `+∞`.
///
/// Infinite capacities are a dedicated variant (not a large sentinel), so the
/// API can certify that a returned cut is finite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capacity {
    /// A finite capacity.
    Finite(u128),
    /// An infinite capacity: the edge can never be part of a finite cut.
    Infinite,
}

impl Capacity {
    /// Whether the capacity is infinite.
    pub fn is_infinite(&self) -> bool {
        matches!(self, Capacity::Infinite)
    }

    /// The finite value, if any.
    pub fn finite(&self) -> Option<u128> {
        match self {
            Capacity::Finite(v) => Some(*v),
            Capacity::Infinite => None,
        }
    }

    /// Saturating addition (`∞` absorbs).
    pub fn saturating_add(self, other: Capacity) -> Capacity {
        match (self, other) {
            (Capacity::Finite(a), Capacity::Finite(b)) => Capacity::Finite(a.saturating_add(b)),
            _ => Capacity::Infinite,
        }
    }
}

impl PartialOrd for Capacity {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Capacity {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use Capacity::*;
        match (self, other) {
            (Finite(a), Finite(b)) => a.cmp(b),
            (Finite(_), Infinite) => std::cmp::Ordering::Less,
            (Infinite, Finite(_)) => std::cmp::Ordering::Greater,
            (Infinite, Infinite) => std::cmp::Ordering::Equal,
        }
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Capacity::Finite(v) => write!(f, "{v}"),
            Capacity::Infinite => write!(f, "+∞"),
        }
    }
}

impl From<u64> for Capacity {
    fn from(v: u64) -> Self {
        Capacity::Finite(v as u128)
    }
}

impl From<u128> for Capacity {
    fn from(v: u128) -> Self {
        Capacity::Finite(v)
    }
}

/// A directed edge of the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Tail of the edge.
    pub from: VertexId,
    /// Head of the edge.
    pub to: VertexId,
    /// Capacity of the edge.
    pub capacity: Capacity,
}

/// A flow network: a directed graph with designated source and target vertices
/// and per-edge capacities (finite or `+∞`).
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    num_vertices: usize,
    source: Option<VertexId>,
    target: Option<VertexId>,
    edges: Vec<Edge>,
}

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        FlowNetwork::default()
    }

    /// Adds a vertex and returns its identifier.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId(self.num_vertices as u32);
        self.num_vertices += 1;
        id
    }

    /// Adds `n` vertices, returning the identifier of the first one.
    pub fn add_vertices(&mut self, n: usize) -> VertexId {
        let first = VertexId(self.num_vertices as u32);
        self.num_vertices += n;
        first
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The size `|N| = |V| + |E|`.
    pub fn size(&self) -> usize {
        self.num_vertices + self.edges.len()
    }

    /// Declares the source vertex.
    pub fn set_source(&mut self, v: VertexId) {
        assert!(v.index() < self.num_vertices, "vertex out of range");
        self.source = Some(v);
    }

    /// Declares the target vertex.
    pub fn set_target(&mut self, v: VertexId) {
        assert!(v.index() < self.num_vertices, "vertex out of range");
        self.target = Some(v);
    }

    /// The source vertex (panics if unset).
    pub fn source(&self) -> VertexId {
        // lint: allow(panic-freedom, documented panicking accessor; callers set endpoints first)
        self.source.expect("source vertex not set")
    }

    /// The target vertex (panics if unset).
    pub fn target(&self) -> VertexId {
        // lint: allow(panic-freedom, documented panicking accessor; callers set endpoints first)
        self.target.expect("target vertex not set")
    }

    /// Adds a directed edge with the given capacity and returns its identifier.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, capacity: Capacity) -> EdgeId {
        assert!(from.index() < self.num_vertices && to.index() < self.num_vertices);
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge { from, to, capacity });
        id
    }

    /// The edge with the given identifier.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.index()]
    }

    /// Iterator over `(EdgeId, Edge)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, Edge)> + '_ {
        self.edges.iter().enumerate().map(|(i, &e)| (EdgeId(i as u32), e))
    }

    /// Sum of all finite capacities (used to bound flows internally).
    pub fn total_finite_capacity(&self) -> u128 {
        self.edges.iter().filter_map(|e| e.capacity.finite()).sum()
    }

    /// Checks whether removing the given edge set disconnects the source from
    /// the target (i.e. the set is a *cut* in the sense of the paper).
    pub fn is_cut(&self, removed: &std::collections::BTreeSet<EdgeId>) -> bool {
        use std::collections::VecDeque;
        let source = self.source();
        let target = self.target();
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); self.num_vertices];
        for (id, e) in self.edges() {
            if !removed.contains(&id) {
                adjacency[e.from.index()].push(e.to.index());
            }
        }
        let mut seen = vec![false; self.num_vertices];
        let mut queue = VecDeque::from([source.index()]);
        seen[source.index()] = true;
        while let Some(v) = queue.pop_front() {
            if v == target.index() {
                return false;
            }
            for &u in &adjacency[v] {
                if !seen[u] {
                    seen[u] = true;
                    queue.push_back(u);
                }
            }
        }
        true
    }

    /// The cost of an edge set: the sum of its capacities (`+∞` absorbs).
    pub fn cost(&self, edges: &std::collections::BTreeSet<EdgeId>) -> Capacity {
        edges
            .iter()
            .map(|&id| self.edge(id).capacity)
            .fold(Capacity::Finite(0), Capacity::saturating_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn capacity_ordering_and_arithmetic() {
        assert!(Capacity::Finite(3) < Capacity::Finite(5));
        assert!(Capacity::Finite(u128::MAX) < Capacity::Infinite);
        assert_eq!(Capacity::Infinite, Capacity::Infinite);
        assert_eq!(Capacity::Finite(2).saturating_add(Capacity::Finite(3)), Capacity::Finite(5));
        assert!(Capacity::Finite(2).saturating_add(Capacity::Infinite).is_infinite());
        assert_eq!(Capacity::from(7u64).finite(), Some(7));
        assert_eq!(Capacity::Infinite.finite(), None);
        assert_eq!(Capacity::Finite(4).to_string(), "4");
        assert_eq!(Capacity::Infinite.to_string(), "+∞");
    }

    fn diamond() -> (FlowNetwork, Vec<EdgeId>) {
        // s -> a -> t and s -> b -> t
        let mut n = FlowNetwork::new();
        let s = n.add_vertex();
        let a = n.add_vertex();
        let b = n.add_vertex();
        let t = n.add_vertex();
        n.set_source(s);
        n.set_target(t);
        let e = vec![
            n.add_edge(s, a, Capacity::Finite(2)),
            n.add_edge(a, t, Capacity::Finite(1)),
            n.add_edge(s, b, Capacity::Finite(3)),
            n.add_edge(b, t, Capacity::Infinite),
        ];
        (n, e)
    }

    #[test]
    fn network_construction() {
        let (n, edges) = diamond();
        assert_eq!(n.num_vertices(), 4);
        assert_eq!(n.num_edges(), 4);
        assert_eq!(n.size(), 8);
        assert_eq!(n.edge(edges[3]).capacity, Capacity::Infinite);
        assert_eq!(n.total_finite_capacity(), 6);
    }

    #[test]
    fn cut_detection_and_cost() {
        let (n, edges) = diamond();
        // Removing a->t and s->b disconnects.
        let cut: BTreeSet<EdgeId> = [edges[1], edges[2]].into_iter().collect();
        assert!(n.is_cut(&cut));
        assert_eq!(n.cost(&cut), Capacity::Finite(4));
        // Removing only a->t does not.
        let not_cut: BTreeSet<EdgeId> = [edges[1]].into_iter().collect();
        assert!(!n.is_cut(&not_cut));
        // Removing both source edges disconnects.
        let cut2: BTreeSet<EdgeId> = [edges[0], edges[2]].into_iter().collect();
        assert!(n.is_cut(&cut2));
        assert_eq!(n.cost(&cut2), Capacity::Finite(5));
        // A cut containing an infinite edge has infinite cost.
        let cut3: BTreeSet<EdgeId> = [edges[1], edges[3]].into_iter().collect();
        assert!(n.is_cut(&cut3));
        assert!(n.cost(&cut3).is_infinite());
        // The empty set is not a cut here.
        assert!(!n.is_cut(&BTreeSet::new()));
    }
}
