//! Edmonds–Karp maximum flow (BFS augmenting paths).
//!
//! This is the simplest classical polynomial max-flow algorithm
//! (`O(V·E²)`); it is kept as an independent reference implementation used to
//! cross-check [`crate::dinic`] and [`crate::push_relabel`] in tests and in
//! the `flow_ablation` bench, which measures how much the choice of max-flow
//! solver matters for the resilience reductions of the paper.

use crate::dinic::{Arc, MaxFlow, Residual};
use crate::network::{Capacity, FlowNetwork};
use std::collections::VecDeque;

/// Computes a maximum flow from the network's source to its target with the
/// Edmonds–Karp algorithm. The result is interchangeable with
/// [`crate::dinic::max_flow`] (same value, a residual graph usable for
/// min-cut extraction).
pub fn max_flow(network: &FlowNetwork) -> MaxFlow {
    let n = network.num_vertices();
    let source = network.source().index();
    let target = network.target().index();
    assert_ne!(source, target, "source and target must differ");

    let infinite_cap: u128 = network.total_finite_capacity() + 1;
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut arcs: Vec<Arc> = Vec::new();
    for (_, e) in network.edges() {
        let capacity = match e.capacity {
            Capacity::Finite(0) => continue,
            Capacity::Finite(c) => c,
            Capacity::Infinite => infinite_cap,
        };
        let forward = arcs.len();
        arcs.push(Arc { to: e.to.index(), capacity, flow: 0 });
        arcs.push(Arc { to: e.from.index(), capacity: 0, flow: 0 });
        adjacency[e.from.index()].push(forward);
        adjacency[e.to.index()].push(forward + 1);
    }

    let mut total_flow: u128 = 0;
    // predecessor arc index for each vertex on the current augmenting path.
    let mut pred: Vec<Option<usize>> = vec![None; n];
    loop {
        // BFS for a shortest augmenting path in the residual graph.
        for p in pred.iter_mut() {
            *p = None;
        }
        let mut visited = vec![false; n];
        visited[source] = true;
        let mut queue = VecDeque::from([source]);
        'bfs: while let Some(v) = queue.pop_front() {
            for &ai in &adjacency[v] {
                let arc = arcs[ai];
                if arc.residual() > 0 && !visited[arc.to] {
                    visited[arc.to] = true;
                    pred[arc.to] = Some(ai);
                    if arc.to == target {
                        break 'bfs;
                    }
                    queue.push_back(arc.to);
                }
            }
        }
        if !visited[target] {
            break;
        }
        // Bottleneck along the path.
        let mut bottleneck = u128::MAX;
        let mut v = target;
        while v != source {
            // lint: allow(panic-freedom, BFS reached the target so the predecessor chain is set)
            let ai = pred[v].expect("path exists");
            bottleneck = bottleneck.min(arcs[ai].residual());
            v = arcs[ai ^ 1].to;
        }
        // Augment.
        let mut v = target;
        while v != source {
            // lint: allow(panic-freedom, BFS reached the target so the predecessor chain is set)
            let ai = pred[v].expect("path exists");
            arcs[ai].flow += bottleneck;
            arcs[ai ^ 1].capacity += bottleneck;
            v = arcs[ai ^ 1].to;
        }
        total_flow += bottleneck;
    }

    let value =
        if total_flow >= infinite_cap { Capacity::Infinite } else { Capacity::Finite(total_flow) };
    MaxFlow { value, residual: Residual { adjacency, arcs } }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::VertexId;

    fn simple_network(edges: &[(u32, u32, u64)], n: u32, s: u32, t: u32) -> FlowNetwork {
        let mut net = FlowNetwork::new();
        net.add_vertices(n as usize);
        net.set_source(VertexId(s));
        net.set_target(VertexId(t));
        for &(a, b, c) in edges {
            net.add_edge(VertexId(a), VertexId(b), Capacity::Finite(c as u128));
        }
        net
    }

    #[test]
    fn agrees_with_dinic_on_textbook_instances() {
        let instances = vec![
            simple_network(&[(0, 1, 5)], 2, 0, 1),
            simple_network(&[(0, 1, 5), (1, 2, 3), (2, 3, 7)], 4, 0, 3),
            simple_network(&[(0, 1, 2), (1, 3, 2), (0, 2, 3), (2, 3, 3)], 4, 0, 3),
            simple_network(
                &[
                    (0, 1, 16),
                    (0, 2, 13),
                    (1, 2, 10),
                    (2, 1, 4),
                    (1, 3, 12),
                    (3, 2, 9),
                    (2, 4, 14),
                    (4, 3, 7),
                    (3, 5, 20),
                    (4, 5, 4),
                ],
                6,
                0,
                5,
            ),
            simple_network(&[], 2, 0, 1),
        ];
        for net in instances {
            assert_eq!(max_flow(&net).value, crate::dinic::max_flow(&net).value);
        }
    }

    #[test]
    fn infinite_routes_are_detected() {
        let mut net = FlowNetwork::new();
        let s = net.add_vertex();
        let m = net.add_vertex();
        let t = net.add_vertex();
        net.set_source(s);
        net.set_target(t);
        net.add_edge(s, m, Capacity::Infinite);
        net.add_edge(m, t, Capacity::Infinite);
        assert_eq!(max_flow(&net).value, Capacity::Infinite);
        let mut net2 = FlowNetwork::new();
        let s = net2.add_vertex();
        let m = net2.add_vertex();
        let t = net2.add_vertex();
        net2.set_source(s);
        net2.set_target(t);
        net2.add_edge(s, m, Capacity::Infinite);
        net2.add_edge(m, t, Capacity::Finite(9));
        assert_eq!(max_flow(&net2).value, Capacity::Finite(9));
    }
}
