//! Dinic's maximum-flow algorithm.
//!
//! The paper cites near-linear-time min-cut algorithms [21]; we implement
//! Dinic's algorithm (`O(V²E)` worst case, much faster in practice on the
//! sparse product networks produced by the resilience reductions), which
//! preserves every PTIME claim. Infinite capacities are handled by capping
//! them internally above the total finite capacity: a maximum flow reaching
//! the cap certifies that no finite cut exists.

use crate::network::{Capacity, FlowNetwork};
use std::collections::VecDeque;

/// The result of a maximum-flow computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxFlow {
    /// The value of the maximum flow (equivalently, of the minimum cut, by the
    /// max-flow min-cut theorem). `Infinite` means no finite cut exists.
    pub value: Capacity,
    /// Residual state used to extract a minimum cut (see [`crate::mincut`]).
    pub(crate) residual: Residual,
}

/// Internal residual graph after running Dinic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Residual {
    /// Adjacency list: for each vertex, indices into `arcs`.
    pub(crate) adjacency: Vec<Vec<usize>>,
    /// Arcs (twinned: arc `i ^ 1` is the reverse of arc `i`).
    pub(crate) arcs: Vec<Arc>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Arc {
    pub(crate) to: usize,
    pub(crate) capacity: u128,
    pub(crate) flow: u128,
}

impl Arc {
    pub(crate) fn residual(&self) -> u128 {
        self.capacity - self.flow
    }
}

/// Computes a maximum flow from the network's source to its target.
pub fn max_flow(network: &FlowNetwork) -> MaxFlow {
    let n = network.num_vertices();
    let source = network.source().index();
    let target = network.target().index();
    assert_ne!(source, target, "source and target must differ");

    // Cap infinite capacities strictly above the total finite capacity: any
    // finite cut has cost at most `total`, so a flow of `total + 1` or more
    // certifies that every cut uses an infinite edge.
    let infinite_cap: u128 = network.total_finite_capacity() + 1;

    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut arcs: Vec<Arc> = Vec::new();

    for (_, e) in network.edges() {
        let capacity = match e.capacity {
            Capacity::Finite(0) => continue,
            Capacity::Finite(c) => c,
            Capacity::Infinite => infinite_cap,
        };
        let forward = arcs.len();
        arcs.push(Arc { to: e.to.index(), capacity, flow: 0 });
        arcs.push(Arc { to: e.from.index(), capacity: 0, flow: 0 });
        adjacency[e.from.index()].push(forward);
        adjacency[e.to.index()].push(forward + 1);
    }

    let mut total_flow: u128 = 0;
    let mut level = vec![-1i32; n];
    let mut iter = vec![0usize; n];

    loop {
        // BFS to build the level graph.
        for l in level.iter_mut() {
            *l = -1;
        }
        level[source] = 0;
        let mut queue = VecDeque::from([source]);
        while let Some(v) = queue.pop_front() {
            for &ai in &adjacency[v] {
                let arc = arcs[ai];
                if arc.residual() > 0 && level[arc.to] < 0 {
                    level[arc.to] = level[v] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        if level[target] < 0 {
            break;
        }
        for it in iter.iter_mut() {
            *it = 0;
        }
        // Blocking flow by iterative DFS.
        loop {
            let pushed =
                dfs_push(source, target, u128::MAX, &adjacency, &mut arcs, &level, &mut iter);
            if pushed == 0 {
                break;
            }
            total_flow += pushed;
        }
    }

    let value =
        if total_flow >= infinite_cap { Capacity::Infinite } else { Capacity::Finite(total_flow) };
    MaxFlow { value, residual: Residual { adjacency, arcs } }
}

fn dfs_push(
    v: usize,
    target: usize,
    limit: u128,
    adjacency: &[Vec<usize>],
    arcs: &mut [Arc],
    level: &[i32],
    iter: &mut [usize],
) -> u128 {
    if v == target {
        return limit;
    }
    while iter[v] < adjacency[v].len() {
        let ai = adjacency[v][iter[v]];
        let (to, residual) = {
            let arc = arcs[ai];
            (arc.to, arc.residual())
        };
        if residual > 0 && level[to] == level[v] + 1 {
            let pushed = dfs_push(to, target, limit.min(residual), adjacency, arcs, level, iter);
            if pushed > 0 {
                // Decrease the residual of the used arc and increase the
                // residual of its twin. We track unsigned flow, so the twin's
                // residual gain is recorded as extra capacity; only residuals
                // matter for the algorithm's correctness.
                arcs[ai].flow += pushed;
                arcs[ai ^ 1].capacity += pushed;
                return pushed;
            }
        }
        iter[v] += 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{FlowNetwork, VertexId};

    fn simple_network(edges: &[(u32, u32, u64)], n: u32, s: u32, t: u32) -> FlowNetwork {
        let mut net = FlowNetwork::new();
        net.add_vertices(n as usize);
        net.set_source(VertexId(s));
        net.set_target(VertexId(t));
        for &(a, b, c) in edges {
            net.add_edge(VertexId(a), VertexId(b), Capacity::Finite(c as u128));
        }
        net
    }

    #[test]
    fn single_edge() {
        let net = simple_network(&[(0, 1, 5)], 2, 0, 1);
        assert_eq!(max_flow(&net).value, Capacity::Finite(5));
    }

    #[test]
    fn disconnected_network_has_zero_flow() {
        let net = simple_network(&[], 2, 0, 1);
        assert_eq!(max_flow(&net).value, Capacity::Finite(0));
    }

    #[test]
    fn series_takes_minimum() {
        let net = simple_network(&[(0, 1, 5), (1, 2, 3), (2, 3, 7)], 4, 0, 3);
        assert_eq!(max_flow(&net).value, Capacity::Finite(3));
    }

    #[test]
    fn parallel_paths_add_up() {
        let net = simple_network(&[(0, 1, 2), (1, 3, 2), (0, 2, 3), (2, 3, 3)], 4, 0, 3);
        assert_eq!(max_flow(&net).value, Capacity::Finite(5));
    }

    #[test]
    fn classic_textbook_instance() {
        // CLRS figure: max flow 23.
        let net = simple_network(
            &[
                (0, 1, 16),
                (0, 2, 13),
                (1, 2, 10),
                (2, 1, 4),
                (1, 3, 12),
                (3, 2, 9),
                (2, 4, 14),
                (4, 3, 7),
                (3, 5, 20),
                (4, 5, 4),
            ],
            6,
            0,
            5,
        );
        assert_eq!(max_flow(&net).value, Capacity::Finite(23));
    }

    #[test]
    fn infinite_edges_on_the_only_path() {
        let mut net = FlowNetwork::new();
        let s = net.add_vertex();
        let m = net.add_vertex();
        let t = net.add_vertex();
        net.set_source(s);
        net.set_target(t);
        net.add_edge(s, m, Capacity::Infinite);
        net.add_edge(m, t, Capacity::Infinite);
        assert_eq!(max_flow(&net).value, Capacity::Infinite);
    }

    #[test]
    fn infinite_edge_bottlenecked_by_finite_one() {
        let mut net = FlowNetwork::new();
        let s = net.add_vertex();
        let m = net.add_vertex();
        let t = net.add_vertex();
        net.set_source(s);
        net.set_target(t);
        net.add_edge(s, m, Capacity::Infinite);
        net.add_edge(m, t, Capacity::Finite(4));
        assert_eq!(max_flow(&net).value, Capacity::Finite(4));
    }

    #[test]
    fn zero_capacity_edges_are_ignored() {
        let net = simple_network(&[(0, 1, 0), (0, 1, 3)], 2, 0, 1);
        assert_eq!(max_flow(&net).value, Capacity::Finite(3));
    }

    #[test]
    fn multigraph_edges_accumulate() {
        let net = simple_network(&[(0, 1, 2), (0, 1, 3)], 2, 0, 1);
        assert_eq!(max_flow(&net).value, Capacity::Finite(5));
    }

    #[test]
    fn large_capacities_do_not_overflow() {
        // Two disjoint routes of capacity u64::MAX each: the flow value exceeds
        // u64 but is represented exactly thanks to 128-bit capacities.
        let net = simple_network(&[(0, 1, u64::MAX), (1, 2, u64::MAX), (0, 2, u64::MAX)], 3, 0, 2);
        assert_eq!(max_flow(&net).value, Capacity::Finite(2 * (u64::MAX as u128)));
    }
}
