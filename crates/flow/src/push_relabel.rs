//! Push–relabel maximum flow (FIFO selection with the gap heuristic).
//!
//! A third independent max-flow implementation (`O(V³)` worst case, very fast
//! in practice) used to cross-check [`crate::dinic`] and to support the
//! `flow_ablation` bench: the paper's tractability results only need *some*
//! polynomial MinCut solver, and the ablation measures how much the choice of
//! solver affects the end-to-end resilience pipeline.

use crate::dinic::{Arc, MaxFlow, Residual};
use crate::network::{Capacity, FlowNetwork};
use std::collections::VecDeque;

/// Computes a maximum flow from the network's source to its target with the
/// push–relabel algorithm. The result is interchangeable with
/// [`crate::dinic::max_flow`].
pub fn max_flow(network: &FlowNetwork) -> MaxFlow {
    let n = network.num_vertices();
    let source = network.source().index();
    let target = network.target().index();
    assert_ne!(source, target, "source and target must differ");

    let infinite_cap: u128 = network.total_finite_capacity() + 1;
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut arcs: Vec<Arc> = Vec::new();
    for (_, e) in network.edges() {
        let capacity = match e.capacity {
            Capacity::Finite(0) => continue,
            Capacity::Finite(c) => c,
            Capacity::Infinite => infinite_cap,
        };
        let forward = arcs.len();
        arcs.push(Arc { to: e.to.index(), capacity, flow: 0 });
        arcs.push(Arc { to: e.from.index(), capacity: 0, flow: 0 });
        adjacency[e.from.index()].push(forward);
        adjacency[e.to.index()].push(forward + 1);
    }

    let mut height: Vec<usize> = vec![0; n];
    let mut excess: Vec<u128> = vec![0; n];
    // Number of vertices at each height, for the gap heuristic.
    let mut height_count: Vec<usize> = vec![0; 2 * n + 1];
    height[source] = n;
    height_count[0] = n.saturating_sub(1);
    height_count[n] += 1;

    let mut active: VecDeque<usize> = VecDeque::new();
    let mut in_queue = vec![false; n];

    // Helper closure semantics inlined: push `d` units along arc `ai`.
    let push = |arcs: &mut Vec<Arc>, excess: &mut Vec<u128>, from: usize, ai: usize, d: u128| {
        arcs[ai].flow += d;
        arcs[ai ^ 1].capacity += d;
        excess[from] -= d;
        let to = arcs[ai].to;
        excess[to] += d;
    };

    // Saturate all source arcs.
    let source_arcs: Vec<usize> = adjacency[source].clone();
    for ai in source_arcs {
        if ai % 2 == 0 {
            let d = arcs[ai].residual();
            if d > 0 {
                excess[source] += d; // keep excess non-negative at the source
                push(&mut arcs, &mut excess, source, ai, d);
                let to = arcs[ai].to;
                if to != target && to != source && !in_queue[to] {
                    active.push_back(to);
                    in_queue[to] = true;
                }
            }
        }
    }

    while let Some(v) = active.pop_front() {
        in_queue[v] = false;
        if v == source || v == target {
            continue;
        }
        let mut idx = 0;
        while excess[v] > 0 {
            if idx == adjacency[v].len() {
                // Relabel: set height to 1 + the minimum height over residual arcs.
                let old_height = height[v];
                let mut min_height = usize::MAX;
                for &ai in &adjacency[v] {
                    if arcs[ai].residual() > 0 {
                        min_height = min_height.min(height[arcs[ai].to]);
                    }
                }
                if min_height == usize::MAX {
                    break; // no residual arc: the remaining excess is stuck (cannot happen)
                }
                let new_height = (min_height + 1).min(2 * n);
                height_count[old_height] -= 1;
                // Gap heuristic: if no vertex remains at `old_height`, every
                // vertex above it (except the source/target sentinels) can be
                // lifted past `n`, as it can no longer reach the target.
                if height_count[old_height] == 0 && old_height < n {
                    for (u, h) in height.iter_mut().enumerate() {
                        if u != source && u != target && *h > old_height && *h <= n {
                            height_count[*h] -= 1;
                            *h = n + 1;
                            height_count[n + 1] += 1;
                        }
                    }
                }
                height[v] = new_height;
                height_count[new_height] += 1;
                idx = 0;
                continue;
            }
            let ai = adjacency[v][idx];
            let to = arcs[ai].to;
            if arcs[ai].residual() > 0 && height[v] == height[to] + 1 {
                let d = excess[v].min(arcs[ai].residual());
                push(&mut arcs, &mut excess, v, ai, d);
                if to != source && to != target && !in_queue[to] {
                    active.push_back(to);
                    in_queue[to] = true;
                }
            } else {
                idx += 1;
            }
        }
    }

    let total_flow = excess[target];
    let value =
        if total_flow >= infinite_cap { Capacity::Infinite } else { Capacity::Finite(total_flow) };
    MaxFlow { value, residual: Residual { adjacency, arcs } }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::VertexId;

    fn simple_network(edges: &[(u32, u32, u64)], n: u32, s: u32, t: u32) -> FlowNetwork {
        let mut net = FlowNetwork::new();
        net.add_vertices(n as usize);
        net.set_source(VertexId(s));
        net.set_target(VertexId(t));
        for &(a, b, c) in edges {
            net.add_edge(VertexId(a), VertexId(b), Capacity::Finite(c as u128));
        }
        net
    }

    #[test]
    fn agrees_with_dinic_on_textbook_instances() {
        let instances = vec![
            simple_network(&[(0, 1, 5)], 2, 0, 1),
            simple_network(&[(0, 1, 5), (1, 2, 3), (2, 3, 7)], 4, 0, 3),
            simple_network(&[(0, 1, 2), (1, 3, 2), (0, 2, 3), (2, 3, 3)], 4, 0, 3),
            simple_network(&[(0, 1, 1), (1, 2, 1), (2, 0, 1), (0, 3, 2), (1, 3, 1)], 4, 0, 3),
            simple_network(
                &[
                    (0, 1, 16),
                    (0, 2, 13),
                    (1, 2, 10),
                    (2, 1, 4),
                    (1, 3, 12),
                    (3, 2, 9),
                    (2, 4, 14),
                    (4, 3, 7),
                    (3, 5, 20),
                    (4, 5, 4),
                ],
                6,
                0,
                5,
            ),
            simple_network(&[], 2, 0, 1),
            simple_network(&[(1, 0, 4)], 2, 0, 1),
        ];
        for net in instances {
            assert_eq!(max_flow(&net).value, crate::dinic::max_flow(&net).value);
        }
    }

    #[test]
    fn infinite_routes_are_detected() {
        let mut net = FlowNetwork::new();
        let s = net.add_vertex();
        let m = net.add_vertex();
        let t = net.add_vertex();
        net.set_source(s);
        net.set_target(t);
        net.add_edge(s, m, Capacity::Infinite);
        net.add_edge(m, t, Capacity::Infinite);
        assert_eq!(max_flow(&net).value, Capacity::Infinite);
    }

    #[test]
    fn large_capacities_do_not_overflow() {
        let net = simple_network(&[(0, 1, u64::MAX), (1, 2, u64::MAX), (0, 2, u64::MAX)], 3, 0, 2);
        assert_eq!(max_flow(&net).value, Capacity::Finite(2 * (u64::MAX as u128)));
    }
}
