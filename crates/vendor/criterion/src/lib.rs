//! Vendored offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors the
//! API subset its benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Throughput`], `criterion_group!` / `criterion_main!`,
//! and [`Bencher::iter`]. Statistics are intentionally simple: each benchmark
//! is warmed up, timed over a capped number of batches, and reported as a
//! single `min / median` line on stdout. There is no HTML report, outlier
//! analysis, or regression detection.
//!
//! Knobs (environment variables):
//!
//! * `CRITERION_MEASURE_MS` — per-benchmark time budget in milliseconds
//!   (default 200; the `measurement_time` requested by the bench is capped to
//!   this so `cargo bench` stays usable in CI);
//! * `CRITERION_SAVE` — path of a JSON file to persist results into: a
//!   single object mapping each benchmark name to
//!   `{"min_ns": …, "median_ns": …, "p50_ns": …, "p95_ns": …, "p99_ns": …,
//!   "max_ns": …, "samples": …}` (plus `throughput` when annotated); the
//!   tail quantiles use the nearest-rank definition over the sorted sample
//!   vector. The file is rewritten after every completed benchmark, so
//!   an interrupted run still leaves a valid, machine-readable artifact —
//!   this is how the committed `BENCH_*.json` files at the workspace root
//!   are produced (see EXPERIMENTS.md). Relative paths are resolved against
//!   the workspace root (nearest ancestor with a `Cargo.lock`), not the
//!   bench binary's package-directory cwd;
//! * a positional command-line argument filters benchmarks by substring, as
//!   with real Criterion.

#![forbid(unsafe_code)]
use std::collections::BTreeMap;
use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of a parameter rendering alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation for a benchmark (recorded, echoed in the report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times a single benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly within the time budget and records samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (also seeds lazy caches).
        black_box(routine());
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline || self.samples.len() >= 1000 {
                break;
            }
        }
    }
}

/// One persisted measurement (see the `CRITERION_SAVE` knob).
struct SavedRecord {
    min_ns: u128,
    median_ns: u128,
    p50_ns: u128,
    p95_ns: u128,
    p99_ns: u128,
    max_ns: u128,
    samples: usize,
    throughput: Option<Throughput>,
}

/// Nearest-rank quantile of an ascending-sorted sample vector: the smallest
/// sample whose rank is at least `q` of the total (`q` in `(0, 1]`).
fn quantile(sorted: &[Duration], q: f64) -> Duration {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// All measurements of the current process, keyed by full benchmark name.
/// `criterion_group!` creates one `Criterion` per group, so persistence
/// accumulates globally and rewrites the whole file after each benchmark:
/// the last write of a `cargo bench --bench <target>` run holds every
/// benchmark of that target.
static SAVED: Mutex<BTreeMap<String, SavedRecord>> = Mutex::new(BTreeMap::new());

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Resolves a relative `CRITERION_SAVE` path against the workspace root —
/// the nearest ancestor of the working directory containing a `Cargo.lock`.
/// Cargo runs bench binaries from the *package* directory (`crates/bench/`),
/// so without this the documented `CRITERION_SAVE=BENCH_x.json cargo bench…`
/// invocation would scatter artifacts outside the committed workspace-root
/// location. Absolute paths are used as given.
fn resolve_save_path(path: &str) -> std::path::PathBuf {
    let path = std::path::Path::new(path);
    if path.is_absolute() {
        return path.to_path_buf();
    }
    let mut dir = std::env::current_dir().unwrap_or_default();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.join(path);
        }
        if !dir.pop() {
            return path.to_path_buf();
        }
    }
}

fn persist_record(name: &str, record: SavedRecord) {
    let Ok(path) = std::env::var("CRITERION_SAVE") else { return };
    if path.is_empty() {
        return;
    }
    let path = resolve_save_path(&path);
    let mut saved = SAVED.lock().expect("benchmark record lock");
    saved.insert(name.to_string(), record);
    let mut out = String::from("{\n");
    for (i, (name, r)) in saved.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  \"{}\": {{\"min_ns\": {}, \"median_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \
             \"p99_ns\": {}, \"max_ns\": {}, \"samples\": {}",
            escape_json(name),
            r.min_ns,
            r.median_ns,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            r.max_ns,
            r.samples
        ));
        match r.throughput {
            Some(Throughput::Elements(n)) => {
                out.push_str(&format!(", \"throughput\": {{\"elements\": {n}}}"));
            }
            Some(Throughput::Bytes(n)) => {
                out.push_str(&format!(", \"throughput\": {{\"bytes\": {n}}}"));
            }
            None => {}
        }
        out.push('}');
    }
    out.push_str("\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion stub: cannot persist results to {}: {e}", path.display());
    }
}

fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
    Duration::from_millis(ms)
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub sizes samples by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Requests a measurement budget (capped by `CRITERION_MEASURE_MS`).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; warm-up is a single untimed call.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| routine(b));
        self
    }

    /// Benchmarks `routine` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, |b| routine(b, input));
        self
    }

    fn run(&self, id: &BenchmarkId, routine: impl FnOnce(&mut Bencher)) {
        let full_name = format!("{}/{}", self.name, id.id);
        if !self.criterion.matches(&full_name) {
            return;
        }
        let mut bencher = Bencher { samples: Vec::new(), budget: measure_budget() };
        routine(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{full_name:<60} (no samples: routine never called Bencher::iter)");
            return;
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        persist_record(
            &full_name,
            SavedRecord {
                min_ns: min.as_nanos(),
                median_ns: median.as_nanos(),
                p50_ns: quantile(&samples, 0.50).as_nanos(),
                p95_ns: quantile(&samples, 0.95).as_nanos(),
                p99_ns: quantile(&samples, 0.99).as_nanos(),
                max_ns: samples[samples.len() - 1].as_nanos(),
                samples: samples.len(),
                throughput: self.throughput,
            },
        );
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  [{n} elems/iter]"),
            Some(Throughput::Bytes(n)) => format!("  [{n} B/iter]"),
            None => String::new(),
        };
        println!(
            "{full_name:<60} min {:>12}  median {:>12}  ({} samples){throughput}",
            format_duration(min),
            format_duration(median),
            samples.len(),
        );
    }

    /// Ends the group (a no-op in the stub; consumes the group like upstream).
    pub fn finish(self) {}
}

/// The benchmark manager: entry point handed to `criterion_group!` targets.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First non-flag argument acts as a substring filter, as in upstream.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Benchmarks a single routine outside any group.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        group.finish();
        self
    }
}

/// Bundles benchmark functions into a group runner, as in upstream Criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
