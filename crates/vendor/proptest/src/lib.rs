//! Vendored offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! API subset its property-based tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_recursive`, range / tuple / [`Just`]
//! strategies, [`collection::vec`], [`bool::weighted`], [`sample::select`],
//! [`arbitrary::any`], and the `proptest!` / `prop_assert*` / `prop_oneof!`
//! macros.
//!
//! Differences from upstream, deliberate for a test-only stub:
//!
//! * **no shrinking** — a failing case panics with the generated inputs in the
//!   assertion message instead of being minimised;
//! * **deterministic seeding** — each test derives its seed from its name, so
//!   runs are reproducible; set `PROPTEST_SEED` to explore other streams;
//! * `prop_assert!` family delegates to the standard `assert!` family (a
//!   failure is a panic, which the libtest harness reports normally).

#![forbid(unsafe_code)]
pub mod strategy;

pub mod test_runner {
    //! Test configuration and the deterministic generator driving strategies.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
            ProptestConfig { cases, max_shrink_iters: 0 }
        }
    }

    impl ProptestConfig {
        /// A default configuration overriding only the number of cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    /// The random generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A generator seeded from the test name (deterministic per test),
        /// xor-ed with `PROPTEST_SEED` when set.
        pub fn for_test(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            if let Some(extra) =
                std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse::<u64>().ok())
            {
                seed ^= extra;
            }
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for type-driven generation.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    /// Strategy generating an arbitrary value of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A range of collection sizes, `min` inclusive and `bound` exclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        bound: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { min: r.start, bound: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), bound: r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, bound: n + 1 }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.bound);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements generated by `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `true` with a fixed probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(self.0)
        }
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }
}

pub mod sample {
    //! Sampling from explicit value collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy picking uniformly from a fixed list of values.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// A uniform choice among `values`.
    pub fn select<T: Clone>(values: impl Into<Vec<T>>) -> Select<T> {
        let values = values.into();
        assert!(!values.is_empty(), "cannot select from an empty collection");
        Select(values)
    }
}

pub mod prelude {
    //! The imports every property test wants.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property-based tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` against `cases` generated inputs.
///
/// Unlike upstream proptest, the `#[test]` attribute is written explicitly on
/// each function (as this workspace's tests do) and failures are plain panics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(::core::stringify!($name));
                let strategies = ( $( $strat, )* );
                for _case in 0..config.cases {
                    let ( $( $pat, )* ) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (plain `assert_ne!` here).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// A uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
