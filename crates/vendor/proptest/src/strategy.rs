//! The [`Strategy`] trait and the combinators this workspace's tests use.

use crate::test_runner::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A recipe for generating values of an output type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a cloneable generator driven by a [`TestRng`].
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `recurse` lifts a strategy for the inner level to
    /// one for the outer level; recursion stops after `depth` levels. The
    /// `desired_size` and `expected_branch_size` hints of upstream proptest
    /// are accepted but unused; each level falls back to the leaf strategy
    /// with probability 1/3 to bias toward small values.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat =
                Union::new_weighted(vec![(1, leaf.clone()), (2, recurse(strat).boxed())]).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// A weighted choice among strategies of a common value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total_weight: self.total_weight }
    }
}

impl<T> Union<T> {
    /// A uniform choice among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// A weighted choice among `arms`.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        let total_weight = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total_weight > 0, "prop_oneof! requires a positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut ticket = rng.gen_range(0..self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if ticket < weight {
                return arm.generate(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket below total weight always lands in an arm")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_maps_and_unions_generate_in_bounds() {
        let mut rng = TestRng::for_test("strategy_unit");
        let evens = (0u64..10).prop_map(|x| x * 2);
        let nested = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u64..5, n..n + 1));
        let choice = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        for _ in 0..200 {
            assert!(evens.generate(&mut rng) % 2 == 0);
            let v = nested.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
            assert!([1u8, 2].contains(&choice.generate(&mut rng)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth_of(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(children) => 1 + children.iter().map(depth_of).max().unwrap_or(0),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::for_test("recursive_unit");
        for _ in 0..100 {
            assert!(depth_of(&strat.generate(&mut rng)) <= 3);
        }
    }
}
