//! Vendored offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API subset).
//!
//! The build environment has no network access, so the workspace vendors the
//! small API surface it actually uses: [`rngs::StdRng`], [`SeedableRng`], and
//! the [`Rng`] extension methods `gen_range`, `gen_bool` and `gen`. The
//! generator is a SplitMix64 — deterministic per seed (the workload generators
//! rely on per-seed reproducibility, not on matching upstream `rand` streams)
//! and statistically solid for test and benchmark instance generation.

#![forbid(unsafe_code)]
/// A source of randomness: the object-safe core of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support for reproducible generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`; `high` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`, both bounds inclusive.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Multiply-shift rejection-free mapping: bias is < 2^-64 and
                // irrelevant for test workloads.
                let r = rng.next_u64() as u128;
                low.wrapping_add(((r * span) >> 64) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                // span + 1 fits in u128 for every type covered by this macro
                // (at most 64-bit), so the inclusive high bound is reachable.
                let span = (high as u128).wrapping_sub(low as u128) + 1;
                let r = rng.next_u64() as u128;
                low.wrapping_add((r % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_128 {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                // Modulo mapping: the bias is at most span/2^128, irrelevant
                // for test workloads.
                low.wrapping_add((r % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                if span == 0 {
                    // Full 128-bit range: every draw is uniform already.
                    return low.wrapping_add(r as $t);
                }
                low.wrapping_add((r % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_128!(u128, i128);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Values generatable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::draw(self) < p
    }

    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn inclusive_ranges_reach_both_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..200 {
            match rng.gen_range(0u8..=3) {
                0 => saw_low = true,
                3 => saw_high = true,
                _ => {}
            }
        }
        assert!(saw_low && saw_high);
        // The type maximum is reachable as an inclusive bound.
        let mut saw_max = false;
        for _ in 0..200 {
            if rng.gen_range(u8::MAX - 1..=u8::MAX) == u8::MAX {
                saw_max = true;
            }
        }
        assert!(saw_max);
        let _ = rng.gen_range(0u128..=u128::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "observed {hits}");
    }
}
