//! # `rpq-obs`: zero-dependency observability primitives
//!
//! The measurement substrate of the resilience service (std-only, no
//! dependencies):
//!
//! * [`Trace`] — an opt-in phase-level span recorder for one solve. When
//!   disabled (the default for every untraced request) each instrumentation
//!   point costs a single branch on an `Option`; when enabled it records
//!   monotonic-clock durations per named phase, aggregating repeated phases
//!   (a batch runs `product_build` once per database) into one span.
//! * [`Histogram`] — a log₂-bucketed latency histogram over microseconds with
//!   relaxed atomic counters, safe to record into from any number of threads
//!   without locks, plus a consistent [`HistogramSnapshot`] for rendering
//!   p50/p95/p99/max summaries and Prometheus `_bucket`/`_sum`/`_count`
//!   series.
//! * [`MetricsRegistry`] — a sharded map from `(verb, family, tier, backend)`
//!   label keys to shared histograms. Lookups take one short-lived shard lock
//!   and hand back an [`std::sync::Arc`] the caller records into lock-free;
//!   hot paths can cache the `Arc` and skip the map entirely.
//! * [`prom`] — helpers emitting the Prometheus text exposition format
//!   (`# HELP` / `# TYPE` headers, labeled samples, histogram series).

#![forbid(unsafe_code)]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Number of histogram buckets: upper bounds `1, 2, 4, …, 2^26` µs (≈ 67 s)
/// plus a final `+Inf` bucket.
pub const NUM_BUCKETS: usize = 28;

/// The upper bound (inclusive, in µs) of bucket `i`; `None` is the `+Inf`
/// bucket.
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    (i < NUM_BUCKETS - 1).then(|| 1u64 << i)
}

/// The bucket index of a `value` in µs (the first bucket whose upper bound
/// is ≥ `value`).
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        (64 - (value - 1).leading_zeros() as usize).min(NUM_BUCKETS - 1)
    }
}

// ---------------------------------------------------------------------------
// Phase tracing
// ---------------------------------------------------------------------------

/// A running phase measurement handed out by [`Trace::begin`] and consumed by
/// [`Trace::end`]. Holds no reference to the trace, so instrumented code can
/// keep mutable borrows of its own state between the two calls.
#[derive(Debug)]
#[must_use = "pass the timer back to Trace::end to record the phase"]
pub struct PhaseTimer(Option<Instant>);

/// A per-request phase recorder. Disabled traces are inert: every
/// instrumentation point reduces to one branch, so untraced hot paths pay
/// (almost) nothing. Enabled traces accumulate `(phase, µs)` spans keyed by
/// their `&'static` phase name; repeated phases aggregate into one span.
#[derive(Debug, Default)]
pub struct Trace {
    /// When the trace was enabled (`None` = disabled).
    t0: Option<Instant>,
    spans: Vec<(&'static str, u64)>,
}

impl Trace {
    /// An inert trace: `begin`/`end`/`add` are no-ops.
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// A recording trace; [`Trace::seal`] measures the total from this call.
    pub fn enabled() -> Trace {
        Trace { t0: Some(Instant::now()), spans: Vec::new() }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.t0.is_some()
    }

    /// Starts timing a phase (no-op timer when the trace is disabled).
    pub fn begin(&self) -> PhaseTimer {
        PhaseTimer(self.t0.map(|_| Instant::now()))
    }

    /// Ends a phase started by [`Trace::begin`], recording its duration
    /// under `phase`.
    pub fn end(&mut self, timer: PhaseTimer, phase: &'static str) {
        if let Some(t) = timer.0 {
            self.add(phase, t.elapsed().as_micros() as u64);
        }
    }

    /// Adds `us` microseconds to `phase` (aggregating with any previous
    /// spans of the same phase). No-op when disabled.
    pub fn add(&mut self, phase: &'static str, us: u64) {
        if self.t0.is_none() {
            return;
        }
        match self.spans.iter_mut().find(|(name, _)| *name == phase) {
            Some((_, total)) => *total += us,
            None => self.spans.push((phase, us)),
        }
    }

    /// Folds another trace's spans into this one (used to merge the
    /// per-worker traces of a parallel batch). The other trace's own clock
    /// is ignored; only its spans transfer.
    pub fn merge(&mut self, other: &Trace) {
        for &(phase, us) in &other.spans {
            self.add(phase, us);
        }
    }

    /// Closes the trace: measures the total elapsed µs since
    /// [`Trace::enabled`], records the unattributed remainder as an `other`
    /// span (so the spans always sum to the total for sequential solves),
    /// and returns the total. Returns 0 for disabled traces.
    pub fn seal(&mut self) -> u64 {
        let Some(t0) = self.t0 else { return 0 };
        let total = t0.elapsed().as_micros() as u64;
        let accounted: u64 = self.spans.iter().map(|&(_, us)| us).sum();
        self.add("other", total.saturating_sub(accounted));
        total
    }

    /// The recorded `(phase, µs)` spans, in first-recorded order.
    pub fn spans(&self) -> &[(&'static str, u64)] {
        &self.spans
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// A log₂-bucketed histogram of microsecond latencies. All mutation is
/// relaxed-atomic (wait-free recording from any thread); reads go through
/// [`Histogram::snapshot`], which derives every reported figure from one
/// pass over the bucket counters so the rendered `_count` always equals the
/// `+Inf` cumulative bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation of `us` microseconds.
    pub fn record(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters. Concurrent recording may land
    /// between the bucket loads — each recorded sample is either fully
    /// visible in the bucket array or not counted at all, so the snapshot's
    /// internal figures (count, quantiles) stay consistent with each other.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; NUM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A consistent copy of a [`Histogram`]'s counters (see
/// [`Histogram::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all observed values, in µs.
    pub sum: u64,
    /// Largest observed value, in µs.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// An upper-bound estimate of the `q`-quantile (0 < `q` ≤ 1): the upper
    /// bound of the bucket holding the rank-⌈q·count⌉ observation. The
    /// `+Inf` bucket reports the recorded maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper_bound(i).unwrap_or(self.max);
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// The label key of a latency histogram: `(verb, family, tier, backend)`.
/// All components are `&'static` names (protocol verbs, algorithm / tier /
/// flow-backend names), so keys are cheap to hash and compare.
pub type MetricsKey = [&'static str; 4];

/// Default shard count of a [`MetricsRegistry`].
pub const DEFAULT_METRIC_SHARDS: usize = 8;

/// One lock stripe of a [`MetricsRegistry`]: a small unordered key → handle
/// map (registries hold a handful of label sets, so linear scan wins).
type MetricsShard = Mutex<Vec<(MetricsKey, Arc<Histogram>)>>;

/// A sharded `(verb, family, tier, backend)` → [`Histogram`] map. The shard
/// lock is held only for the get-or-create lookup; recording happens on the
/// returned [`Arc`] without any lock.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<MetricsShard>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new(DEFAULT_METRIC_SHARDS)
    }
}

impl MetricsRegistry {
    /// A registry with `shards` stripes (at least one).
    pub fn new(shards: usize) -> MetricsRegistry {
        let shards = shards.max(1);
        MetricsRegistry { shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect() }
    }

    fn shard_of(&self, key: &MetricsKey) -> usize {
        // FNV-1a over the label bytes (keys are a handful of short names, so
        // the hash is a few dozen byte ops behind a shard lookup).
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for part in key {
            for &b in part.as_bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            hash ^= 0xff; // separator, so ("ab","c") ≠ ("a","bc")
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        (hash % self.shards.len() as u64) as usize
    }

    /// The histogram of `key`, created on first use. The returned handle
    /// records lock-free and may be cached by the caller.
    pub fn histogram(&self, key: MetricsKey) -> Arc<Histogram> {
        // Recording never panics while holding the shard lock, but recover
        // from poisoning anyway: metrics must not take down a worker.
        let mut shard =
            self.shards[self.shard_of(&key)].lock().unwrap_or_else(PoisonError::into_inner);
        if let Some((_, h)) = shard.iter().find(|(k, _)| *k == key) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        shard.push((key, Arc::clone(&h)));
        h
    }

    /// Snapshots every histogram, sorted by key for stable rendering.
    pub fn snapshot(&self) -> Vec<(MetricsKey, HistogramSnapshot)> {
        let mut all: Vec<(MetricsKey, HistogramSnapshot)> = Vec::new();
        for stripe in &self.shards {
            let shard = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            all.extend(shard.iter().map(|(k, h)| (*k, h.snapshot())));
        }
        all.sort_by_key(|(key, _)| *key);
        all
    }
}

// ---------------------------------------------------------------------------
// Tier-routing counters
// ---------------------------------------------------------------------------

/// Counters over the router's dispatch decisions (see
/// `rpq_resilience::router`): how many solves each tier answered, how many
/// were degraded below their planned backend, and how many were tightened by
/// overload shedding. All relaxed-atomic — record from any worker thread
/// without locks.
#[derive(Debug, Default)]
pub struct RouteCounters {
    poly: AtomicU64,
    exact: AtomicU64,
    approx: AtomicU64,
    degraded: AtomicU64,
    overload_sheds: AtomicU64,
}

impl RouteCounters {
    /// Zeroed counters.
    pub fn new() -> RouteCounters {
        RouteCounters::default()
    }

    /// Records one routed solve: the answering `tier` (`"poly"`, `"exact"`
    /// or `"approx"`), whether the router `degraded` below the planned
    /// backend, and whether overload shedding (`shed`) tightened the budget.
    pub fn record(&self, tier: &str, degraded: bool, shed: bool) {
        let by_tier = match tier {
            "poly" => &self.poly,
            "exact" => &self.exact,
            _ => &self.approx,
        };
        by_tier.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        if shed {
            self.overload_sheds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> RouteCountersSnapshot {
        RouteCountersSnapshot {
            poly: self.poly.load(Ordering::Relaxed),
            exact: self.exact.load(Ordering::Relaxed),
            approx: self.approx.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            overload_sheds: self.overload_sheds.load(Ordering::Relaxed),
        }
    }
}

/// A copy of [`RouteCounters`] (see [`RouteCounters::snapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCountersSnapshot {
    /// Solves answered by the polynomial tier.
    pub poly: u64,
    /// Solves answered by an exact exponential backend.
    pub exact: u64,
    /// Solves answered by a certified approximation (including the trivial
    /// sandwich).
    pub approx: u64,
    /// Solves degraded below their planned backend.
    pub degraded: u64,
    /// Solves whose budget was tightened by overload shedding.
    pub overload_sheds: u64,
}

impl RouteCountersSnapshot {
    /// Total routed solves across all tiers.
    pub fn total(&self) -> u64 {
        self.poly + self.exact + self.approx
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Helpers emitting the Prometheus text exposition format. Callers write one
/// [`header`](prom::header) per metric family, then any number of samples.
pub mod prom {
    use super::HistogramSnapshot;
    use std::fmt::Write;

    /// Writes the `# HELP` / `# TYPE` header of a metric family. `kind` is
    /// one of `counter`, `gauge`, `histogram`.
    pub fn header(out: &mut String, name: &str, help: &str, kind: &str) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
    }

    /// Writes one sample line. `labels` is the brace-less label list
    /// (`verb="solve",tier="poly"`); pass `""` for an unlabeled sample.
    pub fn sample(out: &mut String, name: &str, labels: &str, value: u64) {
        if labels.is_empty() {
            let _ = writeln!(out, "{name} {value}");
        } else {
            let _ = writeln!(out, "{name}{{{labels}}} {value}");
        }
    }

    /// Writes the cumulative `_bucket` series, `_sum`, and `_count` of one
    /// histogram under `name` with the given extra `labels` (the `le` label
    /// is appended to them). The caller writes the family header once.
    pub fn histogram(out: &mut String, name: &str, labels: &str, snapshot: &HistogramSnapshot) {
        let prefix = if labels.is_empty() { String::new() } else { format!("{labels},") };
        let mut cumulative = 0;
        for (i, &n) in snapshot.buckets.iter().enumerate() {
            cumulative += n;
            let le = match super::bucket_upper_bound(i) {
                Some(bound) => bound.to_string(),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"{le}\"}} {cumulative}");
        }
        sample(out, &format!("{name}_sum"), labels, snapshot.sum);
        sample(out, &format!("{name}_count"), labels, snapshot.count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // Exact powers of two land in the bucket they bound; one past spills
        // into the next.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        for i in 1..NUM_BUCKETS - 1 {
            let bound = bucket_upper_bound(i).unwrap();
            assert_eq!(bucket_index(bound), i, "bound {bound} in its own bucket");
            assert_eq!(bucket_index(bound + 1), i + 1, "bound+1 spills over");
        }
        // Everything past the last finite bound is +Inf.
        let last = bucket_upper_bound(NUM_BUCKETS - 2).unwrap();
        assert_eq!(bucket_index(last + 1), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_counts_sum_and_max() {
        let h = Histogram::new();
        for us in [1, 2, 3, 1000, 70_000_000] {
            h.record(us);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.sum, 70_001_006);
        assert_eq!(snap.max, 70_000_000);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[bucket_index(1000)], 1);
        assert_eq!(snap.buckets[NUM_BUCKETS - 1], 1, "70 s lands in +Inf");
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..98 {
            h.record(3); // bucket 2, bound 4
        }
        h.record(1000);
        h.record(2000);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), 4);
        assert_eq!(snap.quantile(0.95), 4);
        assert_eq!(snap.quantile(0.99), 1024);
        assert_eq!(snap.quantile(1.0), 2048);
        assert_eq!(
            HistogramSnapshot { buckets: [0; NUM_BUCKETS], sum: 0, max: 0 }.quantile(0.5),
            0
        );
        // A +Inf-bucket quantile reports the recorded maximum.
        let h = Histogram::new();
        h.record(u64::MAX / 2);
        assert_eq!(h.snapshot().quantile(0.5), u64::MAX / 2);
    }

    #[test]
    fn traces_record_and_aggregate_phases() {
        let mut trace = Trace::enabled();
        assert!(trace.is_enabled());
        let t = trace.begin();
        trace.end(t, "build");
        trace.add("build", 5);
        trace.add("solve", 7);
        let total = trace.seal();
        let spans = trace.spans();
        assert_eq!(spans.iter().filter(|(n, _)| *n == "build").count(), 1, "aggregated");
        assert!(spans.iter().any(|(n, _)| *n == "other"), "seal adds the remainder");
        let accounted: u64 = spans.iter().map(|&(_, us)| us).sum();
        assert_eq!(accounted, total.max(accounted), "spans sum to at least the sealed total");
    }

    #[test]
    fn disabled_traces_are_inert() {
        let mut trace = Trace::disabled();
        let t = trace.begin();
        trace.end(t, "build");
        trace.add("solve", 7);
        assert_eq!(trace.seal(), 0);
        assert!(trace.spans().is_empty());
    }

    #[test]
    fn merge_folds_worker_spans_into_the_parent() {
        let mut parent = Trace::enabled();
        parent.add("build", 5);
        let mut worker = Trace::enabled();
        worker.add("build", 3);
        worker.add("solve", 2);
        parent.merge(&worker);
        let spans = parent.spans().to_vec();
        assert!(spans.contains(&("build", 8)));
        assert!(spans.contains(&("solve", 2)));
        // Merging into a disabled parent is a no-op.
        let mut disabled = Trace::disabled();
        disabled.merge(&worker);
        assert!(disabled.spans().is_empty());
    }

    #[test]
    fn registry_shares_histograms_per_key() {
        let registry = MetricsRegistry::default();
        let a = registry.histogram(["solve", "local", "poly", "dinic"]);
        let b = registry.histogram(["solve", "local", "poly", "dinic"]);
        assert!(Arc::ptr_eq(&a, &b));
        a.record(10);
        b.record(20);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].1.count(), 2);
        registry.histogram(["solve", "chain", "poly", "dinic"]).record(1);
        assert_eq!(registry.snapshot().len(), 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let registry = Arc::new(MetricsRegistry::default());
        let threads = 8;
        let per_thread = 10_000;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    let h = registry.histogram(["solve", "local", "poly", "dinic"]);
                    for i in 0..per_thread {
                        h.record((t * per_thread + i) as u64 % 4096);
                    }
                });
            }
        });
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].1.count(), (threads * per_thread) as u64);
    }

    #[test]
    fn route_counters_attribute_tiers_degradations_and_sheds() {
        let counters = RouteCounters::new();
        counters.record("poly", false, false);
        counters.record("poly", false, false);
        counters.record("exact", false, false);
        counters.record("approx", true, false);
        counters.record("approx", true, true);
        let snap = counters.snapshot();
        assert_eq!((snap.poly, snap.exact, snap.approx), (2, 1, 2));
        assert_eq!((snap.degraded, snap.overload_sheds), (2, 1));
        assert_eq!(snap.total(), 5);
        // Recording is lock-free: concurrent workers lose nothing.
        let counters = Arc::new(RouteCounters::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counters = Arc::clone(&counters);
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        counters.record("poly", false, false);
                    }
                });
            }
        });
        assert_eq!(counters.snapshot().total(), 8_000);
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let mut out = String::new();
        prom::header(&mut out, "rpq_requests_total", "Requests served.", "counter");
        prom::sample(&mut out, "rpq_requests_total", "", 3);
        prom::header(&mut out, "rpq_solve_latency_us", "Solve latency.", "histogram");
        let h = Histogram::new();
        h.record(1);
        h.record(100);
        prom::histogram(&mut out, "rpq_solve_latency_us", "verb=\"solve\"", &h.snapshot());
        assert!(out.contains("# TYPE rpq_solve_latency_us histogram"));
        assert!(out.contains("rpq_solve_latency_us_bucket{verb=\"solve\",le=\"1\"} 1"));
        assert!(out.contains("rpq_solve_latency_us_bucket{verb=\"solve\",le=\"+Inf\"} 2"));
        assert!(out.contains("rpq_solve_latency_us_sum{verb=\"solve\"} 101"));
        assert!(out.contains("rpq_solve_latency_us_count{verb=\"solve\"} 2"));
        // Cumulative buckets never decrease.
        let mut last = 0;
        for line in out.lines().filter(|l| l.starts_with("rpq_solve_latency_us_bucket")) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last);
            last = value;
        }
    }
}
