//! `batch_parallel`: wall-clock scaling of parallel batch solving.
//!
//! `PreparedQuery::solve_batch_parallel` splits the per-database half of a
//! batch over scoped worker threads (the query-only plan is shared
//! read-only). This benchmark sweeps the `jobs` count on a fixed batch of
//! flow-shaped `ax*b` databases, at two database sizes:
//!
//! * `engine/jobs_<j>/<facts>` — `solve_batch_parallel(&dbs, j)` on 16
//!   pre-parsed databases of about `<facts>` facts each (`jobs_1` is the
//!   sequential baseline: it takes the exact `solve_batch` code path);
//! * `server/jobs_<j>` — the same batch as one end-to-end `solve_batch`
//!   request (`"jobs": j`) over a persistent TCP connection, including
//!   database text parsing server-side.
//!
//! On a multi-core host the `jobs_2`/`jobs_4` series should undercut
//! `jobs_1` roughly linearly until the per-database work no longer amortizes
//! a thread spawn; on a single-core host all series coincide (modulo the
//! scoped-thread overhead, which this benchmark also makes visible). Run
//! with `CRITERION_SAVE=BENCH_batch_parallel.json cargo bench -p rpq-bench
//! --bench batch_parallel` to refresh the committed artifact (see
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpq_bench::workloads::flow_db_of_size;
use rpq_graphdb::{text, GraphDb};
use rpq_resilience::engine::Engine;
use rpq_resilience::rpq::Rpq;
use rpq_server::{Client, QuerySpec, Request, Server, ServerConfig};

const BATCH: usize = 16;
const JOBS: [usize; 3] = [1, 2, 4];

fn corpus(facts: usize) -> Vec<GraphDb> {
    // Vary the seed-ish size a little so the databases are not identical.
    (0..BATCH).map(|i| flow_db_of_size(facts + 8 * i)).collect()
}

fn bench_batch_parallel(c: &mut Criterion) {
    let engine = Engine::new();
    let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
    let mut group = c.benchmark_group("batch_parallel");
    group.throughput(Throughput::Elements(BATCH as u64));

    for facts in [512, 2048] {
        let dbs = corpus(facts);
        // Sanity: parallel and sequential agree before we time anything.
        let sequential: Vec<_> =
            prepared.solve_batch(&dbs).into_iter().map(|r| r.unwrap().value).collect();
        for jobs in JOBS {
            let parallel: Vec<_> = prepared
                .solve_batch_parallel(&dbs, jobs)
                .into_iter()
                .map(|r| r.unwrap().value)
                .collect();
            assert_eq!(parallel, sequential, "jobs={jobs}");
            group.bench_with_input(
                BenchmarkId::new(format!("engine/jobs_{jobs}"), facts),
                &dbs,
                |b, dbs| {
                    b.iter(|| prepared.solve_batch_parallel(dbs, jobs));
                },
            );
        }
    }

    // End to end: the same workload as one `solve_batch` request with a
    // per-request `jobs` setting, over one persistent connection.
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
    let running = server.spawn().expect("spawn server");
    let dbs_text: Vec<String> = corpus(512).iter().map(text::serialize).collect();
    let mut client = Client::connect(running.addr).expect("connect");
    for jobs in JOBS {
        let request = Request::SolveBatch {
            query: QuerySpec { jobs: Some(jobs), ..QuerySpec::new("ax*b") },
            dbs: dbs_text.clone(),
        };
        group.bench_function(BenchmarkId::new("server", format!("jobs_{jobs}")), |b| {
            b.iter(|| client.request(&request).expect("batch response"));
        });
    }
    group.finish();

    let mut closer = Client::connect(running.addr).expect("connect for shutdown");
    closer.request(&Request::Shutdown).expect("shutdown ack");
    running.join().expect("clean server exit");
}

criterion_group!(benches, bench_batch_parallel);
criterion_main!(benches);
