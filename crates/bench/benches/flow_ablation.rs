//! Ablation: choice of the max-flow solver behind the MinCut reductions.
//!
//! The paper's tractability results (Theorem 3.13, Propositions 7.6 and 7.9)
//! only require *some* polynomial MinCut oracle; the cited near-linear-time
//! algorithm [21] is replaced in this reproduction by Dinic's algorithm. This
//! bench measures how much that choice matters by running the three solvers
//! shipped with `rpq-flow` (Dinic, Edmonds–Karp, push–relabel) on the two
//! network shapes that the resilience reductions actually produce:
//!
//! * layered product-style networks (what the Theorem 3.13 reduction builds
//!   from a layered database and an RO-εNFA), and
//! * multi-source/multi-sink flow networks with infinite source/sink arcs
//!   (the MinCut ⇔ `ax*b` correspondence of the introduction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_flow::{min_cut_with, Capacity, FlowAlgorithm, FlowNetwork, VertexId};
use std::time::Duration;

/// A layered random network: `layers` layers of `width` vertices, edges only
/// between consecutive layers, plus a super-source and super-target attached
/// with infinite capacities (the shape of the Theorem 3.13 product networks).
fn layered_network(layers: usize, width: usize, seed: u64) -> FlowNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = FlowNetwork::new();
    let mut ids: Vec<Vec<VertexId>> = Vec::new();
    for _ in 0..layers {
        ids.push((0..width).map(|_| net.add_vertex()).collect());
    }
    let source = net.add_vertex();
    let target = net.add_vertex();
    net.set_source(source);
    net.set_target(target);
    for v in &ids[0] {
        net.add_edge(source, *v, Capacity::Infinite);
    }
    for v in &ids[layers - 1] {
        net.add_edge(*v, target, Capacity::Infinite);
    }
    for l in 0..layers - 1 {
        for &u in &ids[l] {
            // Each vertex reaches ~3 vertices of the next layer.
            for _ in 0..3 {
                let v = ids[l + 1][rng.gen_range(0..width)];
                let capacity = Capacity::Finite(rng.gen_range(1..16));
                net.add_edge(u, v, capacity);
            }
        }
    }
    net
}

fn flow_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_ablation/layered");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    for &(layers, width) in &[(8usize, 16usize), (16, 32), (32, 64)] {
        let net = layered_network(layers, width, 0xC0FFEE + layers as u64);
        // Sanity: all solvers agree before being timed.
        let reference = min_cut_with(&net, FlowAlgorithm::Dinic).value;
        for algorithm in FlowAlgorithm::ALL {
            assert_eq!(min_cut_with(&net, algorithm).value, reference);
        }
        let size = net.size();
        for algorithm in FlowAlgorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{algorithm:?}"), size),
                &net,
                |b, net| b.iter(|| min_cut_with(net, algorithm).value),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, flow_ablation);
criterion_main!(benches);
