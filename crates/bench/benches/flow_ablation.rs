//! Ablation: choice of the max-flow solver behind the MinCut reductions.
//!
//! The paper's tractability results (Theorem 3.13, Propositions 7.6 and 7.9)
//! only require *some* polynomial MinCut oracle; the cited near-linear-time
//! algorithm [21] is replaced in this reproduction by Dinic's algorithm. This
//! bench measures how much that choice matters by running the solvers shipped
//! with `rpq-flow` over the CSR arena path (`CsrFlow::min_cut` with a reused
//! `FlowScratch`, the representation the resilience engine's batch path uses)
//! on two network families:
//!
//! * `layered` — sparse layered product-style networks (~3 out-arcs per
//!   vertex; the shape of the Theorem 3.13 reduction networks), and
//! * `dense` — random networks with average out-degree ≥
//!   `rpq_flow::auto::DENSE_AVG_DEGREE`, where push–relabel's locality is
//!   expected to pay off earlier.
//!
//! Benchmark series per family and size `|N| = |V| + |E|`:
//!
//! * `Csr{Dinic,EdmondsKarp,PushRelabel}` — the concrete backends over a
//!   frozen [`CsrFlow`] with one reused [`FlowScratch`];
//! * `CsrAuto` — [`FlowAlgorithm::Auto`], which should track the per-size
//!   winner (its thresholds in `rpq_flow::auto` are re-derived from this
//!   bench's recorded medians, committed as `BENCH_flow_ablation.json`);
//! * `LegacyDinic` — the pre-CSR `min_cut_with` path, which rebuilds its
//!   adjacency structures per call, as a reference for the CSR speedup.
//!
//! **Quick mode** (`FLOW_ABLATION_QUICK=1`, run as a CI smoke step): skips
//! the criterion sweep and instead times Dinic vs push–relabel directly on
//! one instance on each side of each family's crossover, asserting that the
//! auto-selector picks the measured winner (with a noise margin).

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_flow::{
    min_cut_with, Capacity, CsrFlow, FlowAlgorithm, FlowNetwork, FlowScratch, VertexId,
};
use std::time::{Duration, Instant};

/// A layered random network: `layers` layers of `width` vertices, edges only
/// between consecutive layers, plus a super-source and super-target attached
/// with infinite capacities (the shape of the Theorem 3.13 product networks).
fn layered_network(layers: usize, width: usize, seed: u64) -> FlowNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = FlowNetwork::new();
    let mut ids: Vec<Vec<VertexId>> = Vec::new();
    for _ in 0..layers {
        ids.push((0..width).map(|_| net.add_vertex()).collect());
    }
    let source = net.add_vertex();
    let target = net.add_vertex();
    net.set_source(source);
    net.set_target(target);
    for v in &ids[0] {
        net.add_edge(source, *v, Capacity::Infinite);
    }
    for v in &ids[layers - 1] {
        net.add_edge(*v, target, Capacity::Infinite);
    }
    for l in 0..layers - 1 {
        for &u in &ids[l] {
            // Each vertex reaches ~3 vertices of the next layer.
            for _ in 0..3 {
                let v = ids[l + 1][rng.gen_range(0..width)];
                let capacity = Capacity::Finite(rng.gen_range(1..16));
                net.add_edge(u, v, capacity);
            }
        }
    }
    net
}

/// A dense random network: `width` internal vertices each with 10 random
/// out-arcs (average degree comfortably above `auto::DENSE_AVG_DEGREE` even
/// counting the source/target), the first `width/8` vertices fed from a
/// super-source and the last `width/8` feeding a super-target with infinite
/// capacities (the multi-source/multi-sink MinCut shape of the introduction).
fn dense_network(width: usize, seed: u64) -> FlowNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = FlowNetwork::new();
    let ids: Vec<VertexId> = (0..width).map(|_| net.add_vertex()).collect();
    let source = net.add_vertex();
    let target = net.add_vertex();
    net.set_source(source);
    net.set_target(target);
    let boundary = (width / 8).max(1);
    for v in &ids[..boundary] {
        net.add_edge(source, *v, Capacity::Infinite);
    }
    for v in &ids[width - boundary..] {
        net.add_edge(*v, target, Capacity::Infinite);
    }
    for &u in &ids {
        for _ in 0..10 {
            let v = ids[rng.gen_range(0..width)];
            if v != u {
                net.add_edge(u, v, Capacity::Finite(rng.gen_range(1..16)));
            }
        }
    }
    net
}

/// The two benched families at their sweep sizes.
fn families() -> Vec<(&'static str, Vec<FlowNetwork>)> {
    vec![
        (
            "layered",
            [(8usize, 16usize), (16, 32), (32, 64)]
                .iter()
                .map(|&(layers, width)| layered_network(layers, width, 0xC0FFEE + layers as u64))
                .collect(),
        ),
        (
            "dense",
            [64usize, 256, 1024]
                .iter()
                .map(|&width| dense_network(width, 0xD15EA5E + width as u64))
                .collect(),
        ),
    ]
}

fn flow_ablation(c: &mut Criterion) {
    for (family, nets) in families() {
        let mut group = c.benchmark_group(format!("flow_ablation/{family}"));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(1))
            .warm_up_time(Duration::from_millis(200));
        let mut scratch = FlowScratch::new();
        for net in &nets {
            let csr = CsrFlow::from_network(net);
            // Sanity: every selectable backend agrees with the legacy path
            // before being timed (Auto resolves to one of the concrete ones).
            let reference = min_cut_with(net, FlowAlgorithm::Dinic).value;
            for algorithm in FlowAlgorithm::SELECTABLE {
                assert_eq!(csr.min_cut(algorithm, &mut scratch).value, reference);
            }
            let size = net.size();
            for algorithm in FlowAlgorithm::SELECTABLE {
                group.bench_with_input(
                    BenchmarkId::new(format!("Csr{algorithm:?}"), size),
                    &csr,
                    |b, csr| b.iter(|| csr.min_cut(algorithm, &mut scratch).value),
                );
            }
            group.bench_with_input(BenchmarkId::new("LegacyDinic", size), net, |b, net| {
                b.iter(|| min_cut_with(net, FlowAlgorithm::Dinic).value)
            });
        }
        group.finish();
    }
}

/// Median ns per CSR min-cut over `iters` timed runs (one untimed warm-up).
fn measure_median_ns(
    csr: &CsrFlow,
    algorithm: FlowAlgorithm,
    scratch: &mut FlowScratch,
    iters: usize,
) -> u128 {
    black_box(csr.min_cut(algorithm, scratch).value);
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            black_box(csr.min_cut(algorithm, scratch).value);
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// CI smoke check: on one instance per side of each family's crossover, the
/// auto-selector must pick whichever of Dinic / push–relabel measures faster
/// here and now. Near-ties (within `MARGIN`) accept either choice so timing
/// noise on loaded CI machines cannot flake the step.
fn quick_smoke() {
    const MARGIN: f64 = 1.30;
    let mut scratch = FlowScratch::new();
    for (family, nets) in families() {
        // Smallest and largest sweep size: one instance per crossover side.
        for net in [&nets[0], &nets[nets.len() - 1]] {
            let csr = CsrFlow::from_network(net);
            let dinic = measure_median_ns(&csr, FlowAlgorithm::Dinic, &mut scratch, 15);
            let push_relabel =
                measure_median_ns(&csr, FlowAlgorithm::PushRelabel, &mut scratch, 15);
            let winner = if dinic <= push_relabel {
                FlowAlgorithm::Dinic
            } else {
                FlowAlgorithm::PushRelabel
            };
            let picked = FlowAlgorithm::Auto.resolve(csr.num_vertices(), csr.num_edges());
            let ratio = dinic.max(push_relabel) as f64 / dinic.min(push_relabel).max(1) as f64;
            println!(
                "quick {family}/|N|={}: Dinic {dinic} ns, PushRelabel {push_relabel} ns \
                 -> winner {winner:?}, auto picked {picked:?}",
                net.size(),
            );
            assert!(
                picked == winner || ratio < MARGIN,
                "auto-selector picked {picked:?} but {winner:?} measured {ratio:.2}x faster \
                 on {family}/|N|={}",
                net.size(),
            );
        }
    }
    println!("flow_ablation quick mode: auto-selector picks the measured winner");
}

criterion_group!(benches, flow_ablation);

fn main() {
    if std::env::var("FLOW_ABLATION_QUICK").is_ok_and(|v| v == "1") {
        quick_smoke();
        return;
    }
    benches();
}
