//! `obs_overhead`: cost of the observability layer on the batch hot path.
//!
//! PR 8 threads `rpq_obs::Trace` spans through every solve phase and records
//! per-request latency histograms server-side. Both are designed to be free
//! when off: a disabled `Trace` is a no-op enum variant (no clock reads), and
//! histograms only fire in the server's response path. This benchmark
//! quantifies both halves on the 16-database `ax*b` batch from
//! `batch_parallel` (`jobs = 1`, so the numbers are directly comparable with
//! the committed `BENCH_batch_parallel.json` `engine/jobs_1` series):
//!
//! * `untraced/<facts>` — `solve_batch_parallel_with_cut` through a disabled
//!   trace: the exact code path of an ordinary (non-`trace: true`) request.
//!   The acceptance criterion is that this regresses < 3% against the
//!   pre-observability `engine/jobs_1` baseline;
//! * `traced/<facts>` — the same batch through an enabled `Trace`, i.e. what
//!   a `"trace": true` request (or a server with `--slow-query-log`) pays for
//!   its phase breakdown;
//! * `histogram_record` — one `MetricsRegistry` histogram lookup + record,
//!   the per-request server-side accounting cost (nanoseconds; amortized to
//!   nothing against a solve).
//!
//! Run with `CRITERION_SAVE=BENCH_obs_overhead.json cargo bench -p rpq-bench
//! --bench obs_overhead` to refresh the committed artifact (see
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpq_bench::workloads::flow_db_of_size;
use rpq_graphdb::GraphDb;
use rpq_resilience::engine::Engine;
use rpq_resilience::obs::{MetricsRegistry, Trace};
use rpq_resilience::rpq::Rpq;

const BATCH: usize = 16;

fn corpus(facts: usize) -> Vec<GraphDb> {
    // Same construction as the `batch_parallel` bench: vary the size a
    // little so the databases are not identical.
    (0..BATCH).map(|i| flow_db_of_size(facts + 8 * i)).collect()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let engine = Engine::new();
    let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(BATCH as u64));

    for facts in [512, 2048] {
        let dbs = corpus(facts);
        // Sanity: tracing must not change results, only record spans.
        let untraced: Vec<_> = prepared
            .solve_batch_parallel_with_cut(&dbs, true, 1)
            .into_iter()
            .map(|r| r.unwrap().value)
            .collect();
        let mut check = Trace::enabled();
        let traced: Vec<_> = prepared
            .solve_batch_parallel_with_cut_traced(&dbs, true, 1, &mut check)
            .into_iter()
            .map(|r| r.unwrap().value)
            .collect();
        assert_eq!(traced, untraced, "facts={facts}");
        assert!(check.seal() > 0, "enabled trace must record spans");

        group.bench_with_input(BenchmarkId::new("untraced", facts), &dbs, |b, dbs| {
            b.iter(|| prepared.solve_batch_parallel_with_cut(dbs, true, 1));
        });
        group.bench_with_input(BenchmarkId::new("traced", facts), &dbs, |b, dbs| {
            b.iter(|| {
                let mut trace = Trace::enabled();
                let results =
                    prepared.solve_batch_parallel_with_cut_traced(dbs, true, 1, &mut trace);
                (results, trace.seal())
            });
        });
    }
    group.finish();

    // The server-side per-request accounting: sharded registry lookup plus
    // one atomic histogram record.
    let registry = MetricsRegistry::default();
    let mut group = c.benchmark_group("obs_overhead");
    group.throughput(Throughput::Elements(1));
    let mut us = 0u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            us = us.wrapping_add(137);
            registry.histogram(["solve", "local", "poly", "dinic"]).record(us)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
