//! Gadget-family benchmarks (Figures 5, 7–9, 11, 15–16): the cost of
//! *deriving* a mechanically verified hardness certificate from a language,
//! following the case analysis of Theorems 5.3 and 6.1.
//!
//! This complements the `gadget_verification` bench (which re-verifies the
//! fixed gadgets of Figures 3, 4, 10 and 13): here the gadget itself is built
//! programmatically from the language (stable legs, maximal-gap words, …) and
//! then verified, which is the end-to-end cost of producing a certificate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::Language;
use rpq_resilience::gadgets::families::find_gadget;
use std::time::Duration;

fn gadget_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("gadgets/find_certificate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    // (label, pattern): one representative per transcribed family.
    let cases = [
        ("fig3_square_aa", "aa"),
        ("fig5_case1_aexb_cexd", "aexb|cexd"),
        ("fig7_gap_abca", "abca"),
        ("fig8_gap_abcab", "abcab"),
        ("fig9_aba_bab", "aba|bab"),
        ("fig11_aab", "aab"),
        ("fig15_abcd_be_ef", "abcd|be|ef"),
        ("fig16_abcd_bef", "abcd|bef"),
    ];
    for (label, pattern) in cases {
        let language = Language::parse(pattern).unwrap();
        // Sanity check outside the timed region.
        assert!(find_gadget(&language).is_some(), "{pattern} must have a verified gadget");
        group.bench_with_input(BenchmarkId::from_parameter(label), &language, |b, l| {
            b.iter(|| find_gadget(l).is_some())
        });
    }
    group.finish();

    // Negative side: the driver must also quickly conclude "no gadget" on the
    // tractable languages of Figure 1 (it returns None for those).
    let mut group = c.benchmark_group("gadgets/reject_tractable");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    for pattern in ["ax*b", "ab|bc", "abc|be"] {
        let language = Language::parse(pattern).unwrap();
        assert!(find_gadget(&language).is_none());
        group.bench_with_input(BenchmarkId::from_parameter(pattern), &language, |b, l| {
            b.iter(|| find_gadget(l).is_none())
        });
    }
    group.finish();
}

criterion_group!(benches, gadget_families);
criterion_main!(benches);
