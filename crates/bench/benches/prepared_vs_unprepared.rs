//! Plan reuse: prepared (`Engine::prepare` once + `PreparedQuery::solve` per
//! database) vs unprepared (`algorithms::solve` per database, re-deriving the
//! full query classification every call) on batch workloads.
//!
//! The tractable algorithms split into a query-only half (infix-free
//! sublanguage, ε-check, locality RO-εNFA, chain / one-dangling
//! decompositions, algorithm choice) and a per-database half (building and
//! cutting one flow network). On a batch of small databases the query-only
//! half dominates the unprepared path; the prepared path pays it once. The
//! `prepare_only` group isolates that query-only cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::batch_dbs;
use rpq_graphdb::GraphDb;
use rpq_resilience::algorithms::solve;
use rpq_resilience::engine::Engine;
use rpq_resilience::rpq::Rpq;
use std::time::Duration;

/// One pattern per tractable family, solved over a batch of random databases.
const BATCH_PATTERNS: &[(&str, &str)] =
    &[("local", "ax*b"), ("chain", "ab|bc"), ("one_dangling", "abc|be")];

const BATCH_SIZE: usize = 32;

fn configure(group: &mut criterion::BenchmarkGroup<'_>) {
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
}

fn solve_batch_benchmarks(c: &mut Criterion) {
    for &(family, pattern) in BATCH_PATTERNS {
        let query = Rpq::parse(pattern).expect("benchmark patterns parse");
        let dbs: Vec<GraphDb> = batch_dbs(pattern, BATCH_SIZE);
        let mut group = c.benchmark_group(format!("prepared_vs_unprepared/{family}"));
        configure(&mut group);
        group.throughput(criterion::Throughput::Elements(BATCH_SIZE as u64));

        // Unprepared: the legacy dispatcher reclassifies on every call.
        group.bench_with_input(BenchmarkId::new("unprepared", BATCH_SIZE), &dbs, |b, dbs| {
            b.iter(|| {
                for db in dbs {
                    black_box(solve(&query, db).expect("tractable workload"));
                }
            });
        });

        // Prepared: classify once, solve many.
        let engine = Engine::new();
        group.bench_with_input(BenchmarkId::new("prepared", BATCH_SIZE), &dbs, |b, dbs| {
            b.iter(|| {
                let prepared = engine.prepare(&query).expect("tractable query");
                for result in prepared.solve_batch(dbs) {
                    black_box(result.expect("tractable workload"));
                }
            });
        });

        // The query-only cost the prepared path amortizes away.
        group.bench_function(BenchmarkId::new("prepare_only", 1), |b| {
            b.iter(|| black_box(engine.prepare(&query).expect("tractable query")));
        });
        group.finish();
    }
}

criterion_group!(benches, solve_batch_benchmarks);
criterion_main!(benches);
