//! `router`: decision quality and latency of the cost-model tier router.
//!
//! The router (`rpq_resilience::router`) dispatches every solve through a
//! structural cost estimate: a request whose projected cost fits its budget
//! runs the planned backend and answers exactly; one that does not is
//! degraded down the certified ladder (greedy / k-disjoint bounds where the
//! language admits them, else the trivial sandwich). This benchmark sweeps
//! the cost budget across the decision boundary on the shared scaling
//! corpus and records both halves of the trade:
//!
//! * `route_<family>/<budget_us>` — wall-clock of one routed solve under the
//!   swept `cost_budget_us` (the numeric series plot_bench.py renders):
//!   tight budgets answer fast via certified bounds, loose budgets pay the
//!   planned backend;
//! * `overhead/route_unlimited` vs `overhead/solve_direct` — the router's
//!   no-budget overhead on the ordinary path (one estimate comparison; the
//!   answers are bit-identical);
//! * a **decision-quality table** on stdout: for each budget, the fraction
//!   of solves answered exactly, the fraction degraded, and the mean
//!   relative width `(upper - lower) / max(1, exact)` of the certified
//!   interval over the degraded finite answers — every interval is asserted
//!   to sandwich the true value first.
//!
//! Run with `CRITERION_SAVE=BENCH_router.json cargo bench -p rpq-bench
//! --bench router` to refresh the committed artifact (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpq_bench::workloads::{
    chain_db_of_size, flow_db_of_size, local_db_of_size, one_dangling_db_of_size,
};
use rpq_graphdb::GraphDb;
use rpq_resilience::engine::Engine;
use rpq_resilience::router::{RouteBudget, Router};
use rpq_resilience::rpq::{ResilienceValue, Rpq};

/// The budget sweep, in microseconds: from far below any planned cost to
/// far above the whole corpus (the decision boundary sits in between).
const BUDGETS_US: [u64; 6] = [2, 16, 128, 1024, 8192, 65536];

/// One database per family and size step — enough to put solves on both
/// sides of every budget without inflating the bench runtime.
const SIZES: [usize; 3] = [256, 512, 1024];

type Family = (&'static str, &'static str, fn(usize) -> GraphDb);

fn corpus() -> Vec<(&'static str, &'static str, Vec<GraphDb>)> {
    let families: [Family; 4] = [
        ("ax_star_b", "ax*b", flow_db_of_size),
        ("ab_ad_cd", "ab|ad|cd", local_db_of_size),
        ("ab_bc", "ab|bc", chain_db_of_size),
        ("abc_be", "abc|be", one_dangling_db_of_size),
    ];
    families
        .into_iter()
        .map(|(name, pattern, build)| (name, pattern, SIZES.iter().map(|&s| build(s)).collect()))
        .collect()
}

fn bench_router(c: &mut Criterion) {
    let engine = Engine::new();
    let router = Router::new();
    let corpus = corpus();

    // Decision quality across the sweep: certified sandwich asserted on
    // every degraded answer, then summarized per budget.
    println!("router decision quality ({} solves per budget):", corpus.len() * SIZES.len());
    println!("  budget_us  exact_rate  degraded_rate  mean_rel_width");
    for budget_us in BUDGETS_US {
        let budget = RouteBudget::with_cost_budget_us(budget_us);
        let (mut exact, mut degraded, mut widths) = (0u32, 0u32, Vec::new());
        for (name, pattern, dbs) in &corpus {
            let prepared = engine.prepare(&Rpq::parse(pattern).unwrap()).unwrap();
            for db in dbs {
                let truth = prepared.solve(db).unwrap().value;
                let tiered = prepared.route_with_cut(db, false, &budget, &router).unwrap();
                if tiered.degraded {
                    degraded += 1;
                } else {
                    exact += 1;
                    assert_eq!(tiered.outcome.value, truth, "{name}: unbudgeted answers agree");
                    continue;
                }
                match (truth, tiered.outcome.bounds) {
                    (ResilienceValue::Finite(value), Some((lower, upper))) => {
                        assert!(
                            lower <= value && value <= upper,
                            "{name}: [{lower}, {upper}] does not sandwich {value}"
                        );
                        widths.push((upper - lower) as f64 / (value.max(1)) as f64);
                    }
                    // Trivially certified: resilience 0 or provably infinite.
                    (ResilienceValue::Finite(value), None) => {
                        assert_eq!(tiered.outcome.value, ResilienceValue::Finite(value), "{name}")
                    }
                    (ResilienceValue::Infinite, _) => {
                        assert!(tiered.outcome.value.is_infinite(), "{name}")
                    }
                }
            }
        }
        let total = (exact + degraded) as f64;
        let mean_width =
            if widths.is_empty() { 0.0 } else { widths.iter().sum::<f64>() / widths.len() as f64 };
        println!(
            "  {budget_us:>9}  {:>10.2}  {:>13.2}  {:>14.2}",
            exact as f64 / total,
            degraded as f64 / total,
            mean_width
        );
    }

    // Latency of one routed solve as the budget crosses the boundary: the
    // numeric series rendered by scripts/plot_bench.py.
    let mut group = c.benchmark_group("router");
    group.throughput(Throughput::Elements(1));
    for (name, pattern, dbs) in &corpus {
        let prepared = engine.prepare(&Rpq::parse(pattern).unwrap()).unwrap();
        let db = &dbs[1]; // the 512-fact step
        for budget_us in BUDGETS_US {
            let budget = RouteBudget::with_cost_budget_us(budget_us);
            group.bench_with_input(
                BenchmarkId::new(format!("route_{name}"), budget_us),
                &budget,
                |b, budget| b.iter(|| prepared.route_with_cut(db, false, budget, &router)),
            );
        }
    }
    group.finish();

    // The router's overhead on an unbudgeted request: one cost comparison
    // on top of the planned solve, answers bit-identical.
    let mut group = c.benchmark_group("router");
    group.throughput(Throughput::Elements(1));
    let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
    let db = flow_db_of_size(512);
    assert_eq!(
        prepared.route(&db, &RouteBudget::UNLIMITED).unwrap().outcome,
        prepared.solve(&db).unwrap()
    );
    group.bench_function("overhead/route_unlimited", |b| {
        b.iter(|| prepared.route(&db, &RouteBudget::UNLIMITED))
    });
    group.bench_function("overhead/solve_direct", |b| b.iter(|| prepared.solve(&db)));
    group.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
