//! Gadget benchmarks (Figures 3, 4, 10, 13): mechanical re-verification of the
//! paper's hardness gadgets (Definition 4.9) and the end-to-end vertex-cover
//! reduction of Proposition 4.11 on small encoded graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::Language;
use rpq_resilience::algorithms::{solve_with, Algorithm};
use rpq_resilience::gadgets::library;
use rpq_resilience::gadgets::PreGadget;
use rpq_resilience::reductions::UndirectedGraph;
use rpq_resilience::rpq::Rpq;
use std::time::Duration;

fn gadget_verification(c: &mut Criterion) {
    let gadgets: Vec<(&str, PreGadget)> = vec![
        ("fig3_aa", library::gadget_aa()),
        ("fig10_aaa", library::gadget_aaa()),
        ("fig4_axb_cxd", library::gadget_axb_cxd()),
        ("fig13_ab_bc_ca", library::gadget_ab_bc_ca()),
    ];
    let languages = ["aa", "aaa", "axb|cxd", "ab|bc|ca"];

    let mut group = c.benchmark_group("gadgets/verify");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    for ((name, gadget), pattern) in gadgets.iter().zip(languages) {
        let language = Language::parse(pattern).unwrap();
        assert!(gadget.verify(&language).is_valid, "{name}");
        group.bench_with_input(BenchmarkId::from_parameter(name), gadget, |b, g| {
            b.iter(|| g.verify(&language).is_valid)
        });
    }
    group.finish();

    // Hardness reduction: exact resilience of vertex-cover encodings grows
    // exponentially with the graph size (the NP-hard side of the dichotomy).
    let mut group = c.benchmark_group("gadgets/vertex_cover_reduction_aa");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    let gadget = library::gadget_aa();
    let query = Rpq::parse("aa").unwrap();
    for n in [3usize, 4, 5] {
        let graph = UndirectedGraph::cycle(n);
        let encoding = gadget.encode_graph(&graph);
        group.bench_with_input(BenchmarkId::from_parameter(format!("C{n}")), &encoding, |b, db| {
            b.iter(|| solve_with(Algorithm::ExactBranchAndBound, &query, db).unwrap().value)
        });
    }
    group.finish();
}

criterion_group!(benches, gadget_verification);
criterion_main!(benches);
