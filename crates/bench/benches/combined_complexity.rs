//! Combined complexity of Theorem 3.13: `Õ(|A| · |Σ| · |D|)`.
//!
//! The data-complexity shape (scaling in `|D|`) is measured by the `scaling`
//! bench; this bench sweeps the *query* side instead, growing the alphabet and
//! the automaton while keeping the database size fixed, to check that the
//! running time grows roughly linearly in `|A| · |Σ|` as the combined
//! complexity statement predicts.
//!
//! The query family is `(l₁|…|l_k) m* (r₁|…|r_k)` over `2k + 1` letters: a
//! local language (its local DFA has `Θ(k)` states) that generalizes the
//! `a x* b` MinCut correspondence of the paper's introduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::local::is_local;
use rpq_automata::{Alphabet, Language};
use rpq_graphdb::generate::random_labeled_graph;
use rpq_resilience::algorithms::{solve_with, Algorithm};
use rpq_resilience::rpq::Rpq;
use std::time::Duration;

/// The letters used for the sources (`l_i`), the targets (`r_i`) and the
/// internal edges (`m`). Single-character letters cap the sweep at 12 sources.
const SOURCE_LETTERS: &str = "abcdefghijkl";
const TARGET_LETTERS: &str = "nopqrstuvwyz";

fn query_family(k: usize) -> (Language, Alphabet) {
    let sources: Vec<char> = SOURCE_LETTERS.chars().take(k).collect();
    let targets: Vec<char> = TARGET_LETTERS.chars().take(k).collect();
    let pattern = format!(
        "({}) m* ({})",
        sources.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("|"),
        targets.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("|"),
    );
    let language = Language::parse(&pattern).expect("query family parses");
    let alphabet_chars: String = sources.iter().chain(targets.iter()).chain(['m'].iter()).collect();
    (language, Alphabet::from_chars(&alphabet_chars))
}

fn combined_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("combined_complexity/local_family");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    const FACTS: usize = 2_000;
    const NODES: usize = 400;
    for &k in &[1usize, 2, 4, 8, 12] {
        let (language, alphabet) = query_family(k);
        assert!(is_local(&language), "the query family must stay local (k = {k})");
        let db = random_labeled_graph(NODES, FACTS, &alphabet, 0xD1CE + k as u64);
        let query = Rpq::new(language).with_bag_semantics();
        // |Σ| = 2k + 1 is the swept parameter; |A| grows linearly with it.
        group.bench_with_input(BenchmarkId::from_parameter(2 * k + 1), &query, |b, query| {
            b.iter(|| solve_with(Algorithm::Local, query, &db).unwrap().value)
        });
    }
    group.finish();
}

criterion_group!(benches, combined_complexity);
criterion_main!(benches);
