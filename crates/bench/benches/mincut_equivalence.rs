//! MinCut-equivalence benchmark (paper introduction): the resilience of
//! `a x* b` under bag semantics versus a direct Dinic min-cut on the same
//! instance. The two must return the same value; the benchmark compares the
//! overhead of going through the RPQ product construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::flow_db_of_size;
use rpq_flow::{Capacity, FlowNetwork};
use rpq_graphdb::GraphDb;
use rpq_resilience::algorithms::solve;
use rpq_resilience::rpq::Rpq;
use std::collections::BTreeMap;
use std::time::Duration;

fn classical_network(db: &GraphDb) -> FlowNetwork {
    let mut network = FlowNetwork::new();
    let mut vertex_of = BTreeMap::new();
    for node in db.nodes() {
        vertex_of.insert(node, network.add_vertex());
    }
    let source = network.add_vertex();
    let sink = network.add_vertex();
    network.set_source(source);
    network.set_target(sink);
    for (id, fact) in db.facts() {
        let capacity = Capacity::Finite(db.multiplicity(id) as u128);
        match fact.label.as_char() {
            'a' => {
                network.add_edge(source, vertex_of[&fact.source], Capacity::Infinite);
                network.add_edge(vertex_of[&fact.source], vertex_of[&fact.target], capacity);
            }
            'b' => {
                network.add_edge(vertex_of[&fact.source], vertex_of[&fact.target], capacity);
                network.add_edge(vertex_of[&fact.target], sink, Capacity::Infinite);
            }
            _ => {
                network.add_edge(vertex_of[&fact.source], vertex_of[&fact.target], capacity);
            }
        }
    }
    network
}

fn mincut_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("mincut_equivalence");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for size in [512usize, 2048, 8192] {
        let db = flow_db_of_size(size);
        let query = Rpq::parse("ax*b").unwrap().with_bag_semantics();

        // Consistency check outside the timed region.
        let resilience = solve(&query, &db).unwrap().value.finite().unwrap();
        let mincut = rpq_flow::min_cut(&classical_network(&db)).value.finite().unwrap();
        assert_eq!(resilience, mincut, "resilience must equal the classical min cut");

        group.bench_with_input(BenchmarkId::new("rpq_resilience", db.num_facts()), &db, |b, db| {
            b.iter(|| solve(&query, db).unwrap().value)
        });
        group.bench_with_input(
            BenchmarkId::new("classical_mincut", db.num_facts()),
            &db,
            |b, db| b.iter(|| rpq_flow::min_cut(&classical_network(db)).value),
        );
    }
    group.finish();
}

criterion_group!(benches, mincut_equivalence);
criterion_main!(benches);
