//! Scaling benchmarks for the paper's complexity claims:
//!
//! * Theorem 3.13 — local-language resilience in `Õ(|A|·|Σ|·|D|)` (workloads
//!   `local_ax_star_b_flow` and `local_ab_ad_cd_layered`);
//! * Proposition 7.6 — bipartite-chain resilience, quadratic in `|D|`
//!   (workload `chain_ab_bc_random`);
//! * Proposition 7.9 — one-dangling resilience, near-linear in `|D|`
//!   (workload `one_dangling_abc_be_random`).
//!
//! The measured series (time vs `|D|`) are recorded in `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::{scaling_workloads, workload_language};
use rpq_resilience::algorithms::solve;
use rpq_resilience::rpq::Rpq;
use std::time::Duration;

fn scaling(c: &mut Criterion) {
    for workload in scaling_workloads() {
        let mut group = c.benchmark_group(format!("scaling/{}", workload.name));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));
        let language = workload_language(&workload);
        for &size in &workload.sizes {
            let db = (workload.build)(size);
            let query = Rpq::new(language.clone()).with_bag_semantics();
            group.throughput(criterion::Throughput::Elements(db.num_facts() as u64));
            group.bench_with_input(BenchmarkId::from_parameter(db.num_facts()), &db, |b, db| {
                b.iter(|| solve(&query, db).expect("tractable workload"));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, scaling);
criterion_main!(benches);
