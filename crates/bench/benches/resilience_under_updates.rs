//! Resilience under updates: incremental solves vs full recomputation.
//!
//! The monitoring workload behind `rpq-store`: a 512-fact database receives
//! a delta, and the resilience must be re-answered. The `incremental` arm
//! patches the retained flow network and warm-starts the min-cut
//! (`PreparedQuery::solve_incremental`); the `recompute` arm rebuilds from
//! scratch (`PreparedQuery::solve`). Both arms solve the *same* alternating
//! pair of snapshots (remove a group of facts, put it back), so one
//! iteration is two solves and the retained state always returns to its
//! starting snapshot.
//!
//! The sweep over delta sizes (1 → 256 changes) exhibits the fallback
//! threshold: the engine cedes to the pruned batch solve once a delta
//! exceeds `live_facts / INCREMENTAL_FALLBACK_DIVISOR` (divisor 16 — ~31
//! changes on the 508 live facts of the flow family), so the larger sizes
//! measure the fallback's degradation — the two arms should converge there,
//! while single-fact deltas beat recomputation by well over 2× (measured
//! ~4–7×). `EXPERIMENTS.md` tracks the numbers and the divisor rationale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::{flow_db_of_size, local_db_of_size};
use rpq_graphdb::delta::{changes_from_db, materialize, FactChange};
use rpq_graphdb::GraphDb;
use rpq_resilience::engine::Engine;
use rpq_resilience::rpq::Rpq;
use std::time::Duration;

/// A workload family: display name, query pattern, instance generator.
type Family = (&'static str, &'static str, fn(usize) -> GraphDb);

/// The local-language families of the store corpus, at the 512-fact size.
const FAMILIES: &[Family] =
    &[("flow_axb", "ax*b", flow_db_of_size), ("local_disj", "ab|ad|cd", local_db_of_size)];

/// Delta sizes in changes per solve: 1–16 ride the patch path, 64+ exceed
/// the fallback threshold (`live_facts / 16` ≈ 26–31 on these families) and
/// exercise the cede-to-batch path.
const DELTA_SIZES: &[usize] = &[1, 4, 16, 64, 128, 256];

/// An alternating update pair: `del` removes `size` endogenous facts,
/// `ins` puts them back, together with the two materialized snapshots.
struct UpdatePair {
    log: Vec<FactChange>,
    del: Vec<FactChange>,
    ins: Vec<FactChange>,
    full: GraphDb,
    reduced: GraphDb,
}

fn update_pair(db: &GraphDb, size: usize) -> UpdatePair {
    let log = changes_from_db(db);
    // Spread the toggled facts across the database (a stride, not a prefix),
    // so the delta touches many distinct product blocks.
    let endogenous: Vec<&FactChange> =
        log.iter().filter(|c| matches!(c, FactChange::Put { exogenous: false, .. })).collect();
    assert!(endogenous.len() >= size, "need {size} endogenous facts");
    let stride = endogenous.len() / size;
    let ins: Vec<FactChange> = (0..size).map(|i| endogenous[i * stride].clone()).collect();
    let del: Vec<FactChange> = ins
        .iter()
        .map(|c| {
            let (source, label, target) = c.key();
            FactChange::Delete { source: source.into(), label, target: target.into() }
        })
        .collect();
    let mut reduced_log = log.clone();
    reduced_log.extend(del.iter().cloned());
    UpdatePair { reduced: materialize(&reduced_log), full: materialize(&log), log, del, ins }
}

fn updates_benchmarks(c: &mut Criterion) {
    let engine = Engine::new();
    for &(family, pattern, build) in FAMILIES {
        let db = build(512);
        let query = Rpq::parse(pattern).expect("benchmark patterns parse");
        let prepared = engine.prepare(&query).expect("local workload");
        let mut group = c.benchmark_group(format!("resilience_under_updates/{family}"));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(1))
            .warm_up_time(Duration::from_millis(200));
        for &size in DELTA_SIZES {
            let pair = update_pair(&db, size);

            // Sanity before timing: the incremental path must agree with
            // fresh solves on both snapshots of the ring.
            let full_value = prepared.solve(&pair.full).unwrap().value;
            let reduced_value = prepared.solve(&pair.reduced).unwrap().value;
            let mut solver = prepared.incremental_solver();
            let (outcome, _) =
                prepared.solve_incremental(&mut solver, &pair.full, None, false).unwrap();
            assert_eq!(outcome.value, full_value);
            let (outcome, _) = prepared
                .solve_incremental(&mut solver, &pair.reduced, Some(&pair.del), false)
                .unwrap();
            assert_eq!(outcome.value, reduced_value, "{family}/{size}");
            let (outcome, _) = prepared
                .solve_incremental(&mut solver, &pair.full, Some(&pair.ins), false)
                .unwrap();
            assert_eq!(outcome.value, full_value, "{family}/{size}");

            // Incremental: the retained network absorbs del + ins per
            // iteration (two solves), ending back at the full snapshot.
            group.bench_with_input(BenchmarkId::new("incremental", size), &pair, |b, pair| {
                let mut solver = prepared.incremental_solver();
                prepared.solve_incremental(&mut solver, &pair.full, None, false).unwrap();
                b.iter(|| {
                    let down = prepared
                        .solve_incremental(&mut solver, &pair.reduced, Some(&pair.del), false)
                        .unwrap();
                    black_box(down);
                    let up = prepared
                        .solve_incremental(&mut solver, &pair.full, Some(&pair.ins), false)
                        .unwrap();
                    black_box(up);
                });
            });

            // Recompute: two full solves on the same pre-materialized pair.
            group.bench_with_input(BenchmarkId::new("recompute", size), &pair, |b, pair| {
                b.iter(|| {
                    black_box(prepared.solve(&pair.reduced).unwrap());
                    black_box(prepared.solve(&pair.full).unwrap());
                });
            });

            // Log replay is what the store pays on a cold materialization;
            // measured once per family for the EXPERIMENTS.md discussion.
            if size == 1 {
                group.bench_with_input(
                    BenchmarkId::new("materialize_log", pair.log.len()),
                    &pair,
                    |b, pair| b.iter(|| black_box(materialize(&pair.log))),
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, updates_benchmarks);
criterion_main!(benches);
