//! Overhead of witness extraction vs value-only solving.
//!
//! Every flow-based tractable backend can now extract an optimal contingency
//! set from its minimum cut — including the one-dangling rewriting, whose
//! witness requires mapping cut edges of the rewritten instance back through
//! the κ / negative-credit accounting (and, for mirrored decompositions,
//! through the database reversal). This benchmark measures what that costs:
//! the same prepared plan solves the same batch with
//! `PreparedQuery::solve_with_cut(db, true)` and `(db, false)`, so the delta
//! is purely the per-database witness work. One group per tractable family,
//! with the mirrored one-dangling orientation measured separately (it adds a
//! database reversal per solve).
//!
//! Persist results with `CRITERION_SAVE=BENCH_witness.json cargo bench -p
//! rpq-bench --bench witness_overhead` (committed artifact at the workspace
//! root, see EXPERIMENTS.md).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::batch_dbs;
use rpq_graphdb::GraphDb;
use rpq_resilience::engine::Engine;
use rpq_resilience::rpq::Rpq;
use std::time::Duration;

/// One pattern per tractable family, plus the mirrored one-dangling
/// orientation (`cba|eb` reverses every database before rewriting).
const FAMILIES: &[(&str, &str)] = &[
    ("local", "ax*b"),
    ("chain", "ab|bc"),
    ("one_dangling", "abc|be"),
    ("one_dangling_mirrored", "cba|eb"),
];

const BATCH_SIZE: usize = 32;

fn witness_overhead_benchmarks(c: &mut Criterion) {
    for &(family, pattern) in FAMILIES {
        let query = Rpq::parse(pattern).expect("benchmark patterns parse");
        let dbs: Vec<GraphDb> = batch_dbs(pattern, BATCH_SIZE);
        let engine = Engine::new();
        let prepared = engine.prepare(&query).expect("tractable query");

        let mut group = c.benchmark_group(format!("witness_overhead/{family}"));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(1))
            .warm_up_time(Duration::from_millis(200));
        group.throughput(criterion::Throughput::Elements(BATCH_SIZE as u64));

        for (label, want_cut) in [("value_only", false), ("with_witness", true)] {
            group.bench_with_input(BenchmarkId::new(label, BATCH_SIZE), &dbs, |b, dbs| {
                b.iter(|| {
                    for db in dbs {
                        let outcome =
                            prepared.solve_with_cut(db, want_cut).expect("tractable workload");
                        debug_assert_eq!(outcome.contingency_set.is_some(), want_cut);
                        black_box(outcome);
                    }
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, witness_overhead_benchmarks);
criterion_main!(benches);
