//! Exact-versus-polynomial benchmark ("who wins, and where"): on languages
//! with tractable resilience the MinCut-based algorithms scale polynomially
//! while the exact branch-and-bound blows up; on NP-hard languages only the
//! exponential solver is available and its cost grows with the instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::{aa_path_db, flow_db_of_size};
use rpq_resilience::algorithms::{solve_with, Algorithm};
use rpq_resilience::rpq::Rpq;
use std::time::Duration;

fn exact_vs_poly(c: &mut Criterion) {
    // Tractable language ax*b: polynomial algorithm vs exact branch-and-bound.
    let mut group = c.benchmark_group("exact_vs_poly/ax_star_b");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    let query = Rpq::parse("ax*b").unwrap().with_bag_semantics();
    // The exact solver is exponential: ~9 ms at 54 facts, ~170 ms at 87,
    // effectively forever at 231 — so it is only *benchmarked* on sizes
    // where one iteration terminates (the blow-up is still plainly visible),
    // while the polynomial side sweeps further.
    for size in [64usize, 96] {
        let db = flow_db_of_size(size);
        // Sanity: both solvers agree.
        assert_eq!(
            solve_with(Algorithm::Local, &query, &db).unwrap().value,
            solve_with(Algorithm::ExactBranchAndBound, &query, &db).unwrap().value
        );
        group.bench_with_input(BenchmarkId::new("exact_bb", db.num_facts()), &db, |b, db| {
            b.iter(|| solve_with(Algorithm::ExactBranchAndBound, &query, db).unwrap().value)
        });
    }
    for size in [64usize, 96, 256, 1024] {
        let db = flow_db_of_size(size);
        group.bench_with_input(BenchmarkId::new("mincut_poly", db.num_facts()), &db, |b, db| {
            b.iter(|| solve_with(Algorithm::Local, &query, db).unwrap().value)
        });
    }
    group.finish();

    // NP-hard language aa: only the exponential solver applies; its cost grows
    // with the path length (the polynomial algorithms refuse the language).
    let mut group = c.benchmark_group("exact_vs_poly/aa_paths");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    let aa = Rpq::parse("aa").unwrap();
    assert!(solve_with(Algorithm::Local, &aa, &aa_path_db(4)).is_err());
    for n in [8usize, 16, 24] {
        let db = aa_path_db(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| solve_with(Algorithm::ExactBranchAndBound, &aa, db).unwrap().value)
        });
    }
    group.finish();
}

criterion_group!(benches, exact_vs_poly);
criterion_main!(benches);
