//! Approximation on the NP-hard side: cost and quality of the polynomial
//! bounds of `resilience::approx` against the exponential exact solver.
//!
//! The paper's hardness results (Sections 4–6) say that no exact polynomial
//! algorithm exists for these languages (unless P = NP); this bench measures
//! what a user gives up by switching to the greedy / k-approximation bounds:
//! the runtime gap versus branch and bound, with the realized approximation
//! ratios printed by the accompanying test assertions in `approx::tests`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::{Alphabet, Language};
use rpq_graphdb::generate::random_labeled_graph;
use rpq_resilience::algorithms::{solve_with, Algorithm};
use rpq_resilience::rpq::Rpq;
use std::time::Duration;

fn approximation_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("approximation/aa_random");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    let alphabet = Alphabet::from_chars("a");
    let query = Rpq::new(Language::parse("aa").unwrap());
    for &facts in &[10usize, 14, 18] {
        let db = random_labeled_graph(facts / 2, facts, &alphabet, 0xAB + facts as u64);
        // Sanity: the bounds really sandwich the exact value on this instance.
        let exact = solve_with(Algorithm::ExactBranchAndBound, &query, &db)
            .unwrap()
            .value
            .finite()
            .unwrap();
        let (lower, upper) =
            solve_with(Algorithm::ApproxGreedy, &query, &db).unwrap().bounds.unwrap();
        assert!(lower <= exact && exact <= upper);

        group.bench_with_input(BenchmarkId::new("exact_bb", facts), &db, |b, db| {
            b.iter(|| solve_with(Algorithm::ExactBranchAndBound, &query, db).unwrap().value)
        });
        group.bench_with_input(BenchmarkId::new("greedy", facts), &db, |b, db| {
            b.iter(|| solve_with(Algorithm::ApproxGreedy, &query, db).unwrap().value)
        });
        group.bench_with_input(BenchmarkId::new("k_approx", facts), &db, |b, db| {
            b.iter(|| solve_with(Algorithm::ApproxKDisjoint, &query, db).unwrap().value)
        });
    }
    group.finish();
}

criterion_group!(benches, approximation_quality);
criterion_main!(benches);
