//! Figure 1 benchmark: classify every example language of the paper's
//! overview figure and time the classification procedure (locality test,
//! four-legged search, chain / one-dangling decompositions).
//!
//! Besides the timing, running this benchmark prints the classification table
//! (who is PTIME, who is NP-hard, who remains unclassified) — the qualitative
//! content of Figure 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::Language;
use rpq_bench::figure1_patterns;
use rpq_resilience::classify::classify;
use std::time::Duration;

fn figure1(c: &mut Criterion) {
    // Print the reproduced figure once.
    println!("\nFigure 1 classification (reproduced):");
    for pattern in figure1_patterns() {
        let language = Language::parse(pattern).unwrap();
        println!("  {:<16} {}", pattern, classify(&language).label());
    }

    let mut group = c.benchmark_group("figure1/classification");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    for pattern in figure1_patterns() {
        let language = Language::parse(pattern).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(pattern), &language, |b, l| {
            b.iter(|| classify(l));
        });
    }
    group.finish();
}

criterion_group!(benches, figure1);
criterion_main!(benches);
