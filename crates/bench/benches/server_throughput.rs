//! `server_throughput`: end-to-end cost of the `rpq-server` service layer.
//!
//! The server amortizes query preparation across databases and connections
//! via its language-keyed prepared-query cache; this benchmark measures what
//! the protocol + TCP + worker-pool layers cost on top of the direct engine,
//! and what a cache hit saves versus re-preparing:
//!
//! * `direct/solve_batch_32` — baseline: one `PreparedQuery::solve_batch`
//!   over 32 pre-parsed databases, no server;
//! * `server/solve_batch_32_one_conn` — the same 32 databases as one
//!   `solve_batch` request over one persistent TCP connection (includes
//!   database text parsing server-side);
//! * `server/solve_batch_32_4_threads` — the same 32 databases split over 4
//!   concurrent client threads (8 each, fresh connections), the acceptance
//!   scenario of the server subsystem;
//! * `server/prepare_cached` — a `prepare` round-trip answered from the
//!   cache (spelling differs from the cached entry, so canonicalization is
//!   on the measured path);
//! * `direct/prepare_uncached` — what the cache saves: a full
//!   `Engine::prepare` (plus regex parsing) per call.
//!
//! Run with `CRITERION_SAVE=BENCH_server.json cargo bench -p rpq-bench
//! --bench server_throughput` to refresh the committed artifact (see
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rpq_automata::Word;
use rpq_graphdb::generate::word_path;
use rpq_graphdb::text;
use rpq_resilience::engine::Engine;
use rpq_resilience::rpq::Rpq;
use rpq_server::{Client, QuerySpec, Request, Server, ServerConfig};

/// 32 path databases `a x^k b` with k cycling 0..8 (all resilience 1 for
/// `ax*b`, sizes 2..10 facts).
fn corpus() -> Vec<String> {
    (0..32)
        .map(|i| {
            let word = format!("a{}b", "x".repeat(i % 8));
            text::serialize(&word_path(&Word::from_str_word(&word)))
        })
        .collect()
}

fn bench_server_throughput(c: &mut Criterion) {
    let dbs = corpus();
    let mut group = c.benchmark_group("server_throughput");
    group.throughput(Throughput::Elements(dbs.len() as u64));

    // Baseline: the engine alone, databases already parsed.
    let engine = Engine::new();
    let prepared = engine.prepare(&Rpq::parse("ax*b").unwrap()).unwrap();
    let parsed: Vec<_> = dbs.iter().map(|t| text::parse(t).unwrap()).collect();
    group.bench_function("direct/solve_batch_32", |b| {
        b.iter(|| prepared.solve_batch(&parsed));
    });

    let server =
        Server::bind("127.0.0.1:0", ServerConfig { threads: 4, ..ServerConfig::default() })
            .expect("bind loopback");
    let running = server.spawn().expect("spawn server");
    let addr = running.addr;

    let mut client = Client::connect(addr).expect("connect");
    let batch_request = Request::SolveBatch { query: QuerySpec::new("ax*b"), dbs: dbs.clone() };
    group.bench_function("server/solve_batch_32_one_conn", |b| {
        b.iter(|| client.request(&batch_request).expect("batch response"));
    });

    group.throughput(Throughput::Elements(1));
    let prepare_request = Request::Prepare { query: QuerySpec::new("a(x)*b") };
    group.bench_function("server/prepare_cached", |b| {
        b.iter(|| client.request(&prepare_request).expect("prepare response"));
    });
    group.bench_function("direct/prepare_uncached", |b| {
        b.iter(|| engine.prepare(&Rpq::parse("a(x)*b").unwrap()).unwrap());
    });

    // With the multiplexed scheduler an idle persistent connection costs no
    // worker (it is parked in the poller), so keeping `client` open would no
    // longer skew the concurrency benchmark below — closing it just keeps
    // the measured connection count at exactly 4.
    drop(client);

    group.throughput(Throughput::Elements(dbs.len() as u64));
    let chunks: Vec<Vec<String>> = dbs.chunks(8).map(<[String]>::to_vec).collect();
    group.bench_function("server/solve_batch_32_4_threads", |b| {
        b.iter(|| {
            let handles: Vec<_> = chunks
                .iter()
                .cloned()
                .map(|chunk| {
                    std::thread::spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        client
                            .request(&Request::SolveBatch {
                                query: QuerySpec::new("ax*b"),
                                dbs: chunk,
                            })
                            .expect("batch response")
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("client thread");
            }
        });
    });
    group.finish();

    let mut closer = Client::connect(addr).expect("connect for shutdown");
    closer.request(&Request::Shutdown).expect("shutdown ack");
    running.join().expect("clean server exit");
}

criterion_group!(benches, bench_server_throughput);
criterion_main!(benches);
