//! Workload definitions shared by the benchmark harness.

use rpq_automata::{Alphabet, Language, Word};
use rpq_graphdb::generate::{flow_instance, layered_instance, random_labeled_graph};
use rpq_graphdb::GraphDb;

/// A named workload: a query language and a family of databases indexed by a
/// size parameter.
pub struct ScalingWorkload {
    /// Short name used in benchmark ids and in `EXPERIMENTS.md`.
    pub name: &'static str,
    /// The regular expression of the query.
    pub pattern: &'static str,
    /// The database sizes (|D| targets) to sweep.
    pub sizes: Vec<usize>,
    /// Builds the database for a given size.
    pub build: fn(usize) -> GraphDb,
}

/// The query language of a workload.
pub fn workload_language(workload: &ScalingWorkload) -> Language {
    Language::parse(workload.pattern).expect("workload patterns parse")
}

/// Builds a flow-shaped `a x* b` database with roughly `size` facts
/// (Theorem 3.13 / MinCut equivalence workloads).
pub fn flow_db_of_size(size: usize) -> GraphDb {
    // layers * width * out_degree ≈ size; keep 8 layers and adjust the width.
    let layers = 8;
    let out_degree = 2;
    let width = (size / (layers * out_degree)).max(1);
    flow_instance(layers, width, out_degree, 16, 0xC0FFEE)
}

/// Builds a layered database over the alphabet of `ab|ad|cd` with roughly
/// `size` facts (local-language scaling workload).
pub fn local_db_of_size(size: usize) -> GraphDb {
    let layers = 6;
    let out_degree = 2;
    let width = (size / (layers * out_degree)).max(1);
    layered_instance(&Alphabet::from_chars("abcd"), layers, width, out_degree, 0xBEEF)
}

/// Builds a random database over `{a, b, c}` with roughly `size` facts
/// (bipartite-chain scaling workload for `ab|bc`).
pub fn chain_db_of_size(size: usize) -> GraphDb {
    random_labeled_graph((size / 3).max(2), size, &Alphabet::from_chars("abc"), 0xABCD)
}

/// Builds a random database over `{a, b, c, e}` with roughly `size` facts
/// (one-dangling scaling workload for `abc|be`).
pub fn one_dangling_db_of_size(size: usize) -> GraphDb {
    random_labeled_graph((size / 3).max(2), size, &Alphabet::from_chars("abce"), 0x0DD)
}

/// The scaling workloads used by the `scaling_*` benchmarks (Theorem 3.13,
/// Proposition 7.6, Proposition 7.9).
pub fn scaling_workloads() -> Vec<ScalingWorkload> {
    vec![
        ScalingWorkload {
            name: "local_ax_star_b_flow",
            pattern: "ax*b",
            sizes: vec![512, 2048, 8192, 32768],
            build: flow_db_of_size,
        },
        ScalingWorkload {
            name: "local_ab_ad_cd_layered",
            pattern: "ab|ad|cd",
            sizes: vec![512, 2048, 8192, 32768],
            build: local_db_of_size,
        },
        ScalingWorkload {
            name: "chain_ab_bc_random",
            pattern: "ab|bc",
            sizes: vec![256, 1024, 4096],
            build: chain_db_of_size,
        },
        ScalingWorkload {
            name: "one_dangling_abc_be_random",
            pattern: "abc|be",
            sizes: vec![256, 1024, 4096],
            build: one_dangling_db_of_size,
        },
    ]
}

/// The Figure 1 example languages (pattern, expected region), re-exported for
/// the classification benchmark and the EXPERIMENTS.md table.
pub fn figure1_patterns() -> Vec<&'static str> {
    vec![
        "abc|abd",
        "ab|ad|cd",
        "ax*b",
        "ab|bc",
        "axb|byc",
        "abc|be",
        "abcd|ce",
        "abcd|be",
        "ax*b|xd",
        "axb|cxd",
        "ax*b|cxd",
        "b(aa)*d",
        "aa",
        "aaaa",
        "abca|cab",
        "ab|bc|ca",
        "abcd|be|ef",
        "abcd|bef",
        "abc|bcd",
        "abc|bef",
        "ab*c|ba",
        "ab*d|ac*d|bc",
    ]
}

/// A batch of `count` small random databases over the alphabet of `pattern`,
/// one per seed — the plan-reuse workload of the `prepared_vs_unprepared`
/// benchmark: the databases are small enough that the query-only analysis
/// dominates an unprepared per-database solve.
pub fn batch_dbs(pattern: &str, count: usize) -> Vec<GraphDb> {
    let language = Language::parse(pattern).expect("workload patterns parse");
    let alphabet = language.used_letters();
    (0..count as u64).map(|seed| random_labeled_graph(5, 10, &alphabet, seed)).collect()
}

/// A small `aa`-workload database: a path of `n` `a`-facts (the exact solver
/// baseline used by the `exact_vs_poly` benchmark on an NP-hard language).
pub fn aa_path_db(n: usize) -> GraphDb {
    let word = Word::from_letters(std::iter::repeat_n(rpq_automata::alphabet::Letter('a'), n));
    rpq_graphdb::generate::word_path(&word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graphdb::satisfies;

    #[test]
    fn workload_databases_have_roughly_the_requested_size() {
        for workload in scaling_workloads() {
            let language = workload_language(&workload);
            for &size in &workload.sizes[..1] {
                let db = (workload.build)(size);
                assert!(db.num_facts() > 0);
                // The query should generally be satisfiable on the workload,
                // otherwise the benchmark would measure trivial work; accept
                // either but make sure evaluation runs.
                let _ = satisfies(&db, &language);
            }
        }
    }

    #[test]
    fn figure1_patterns_parse() {
        for pattern in figure1_patterns() {
            assert!(Language::parse(pattern).is_ok(), "{pattern}");
        }
    }

    #[test]
    fn aa_path_db_has_n_facts() {
        assert_eq!(aa_path_db(12).num_facts(), 12);
    }
}
