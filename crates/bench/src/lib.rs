//! # `rpq-bench`: benchmark harness support
//!
//! Shared workload descriptions for the Criterion benchmarks that reproduce
//! the paper's figures and complexity claims (see `EXPERIMENTS.md` at the
//! workspace root for the experiment index). The benchmarks themselves live
//! under `crates/bench/benches/`; this library hosts the instance generators
//! so that the same workloads can also be regenerated from tests.

#![forbid(unsafe_code)]
pub mod workloads;

pub use workloads::*;
