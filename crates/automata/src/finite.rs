//! Finite-language utilities (Sections 6 and 7 of the paper).
//!
//! Finite RPQs correspond to unions of conjunctive queries; the paper's
//! remaining classification effort concentrates on them. This module provides:
//!
//! * [`FiniteLanguage`] — an explicit, sorted word list with infix-free
//!   reduction and repeated-letter analysis;
//! * **maximal-gap words** (Definition 6.4), the starting point of the
//!   repeated-letter hardness proof (Theorem 6.1);
//! * **chain languages** and **bipartite chain languages (BCLs)**
//!   (Definitions 7.1 and 7.2), tractable by Proposition 7.6;
//! * **one-dangling languages** (Definition 7.8), tractable by Proposition 7.9.

use crate::alphabet::{Alphabet, Letter};
use crate::enfa::Enfa;
use crate::error::Result;
use crate::language::Language;
use crate::local::is_local;
use crate::word::{RepeatedLetterDecomposition, Word};
use std::collections::{BTreeMap, BTreeSet};

/// A finite language given as an explicit, sorted, deduplicated list of words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteLanguage {
    alphabet: Alphabet,
    words: Vec<Word>,
}

impl FiniteLanguage {
    /// Builds a finite language from an iterator of words.
    pub fn from_words<I: IntoIterator<Item = Word>>(words: I) -> FiniteLanguage {
        let mut words: Vec<Word> = words.into_iter().collect();
        words.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        words.dedup();
        let alphabet = Alphabet::from_letters(words.iter().flat_map(|w| w.iter()));
        FiniteLanguage { alphabet, words }
    }

    /// Builds a finite language from string literals, e.g. `["ab", "bc"]`.
    pub fn from_strs<'a, I: IntoIterator<Item = &'a str>>(words: I) -> FiniteLanguage {
        Self::from_words(words.into_iter().map(Word::from_str_word))
    }

    /// Extracts the explicit word list of a finite [`Language`]. Errors with
    /// [`AutomataError::InfiniteLanguage`] when the language is infinite.
    ///
    /// For chain languages this is the explicit-list computation of Lemma 7.7
    /// (our implementation enumerates from the minimal DFA, which is
    /// polynomial; we do not match the paper's exact `O(|Σ|²·|A|)` bound but
    /// the asymptotic class — PTIME combined complexity — is preserved).
    pub fn from_language(language: &Language) -> Result<FiniteLanguage> {
        let words = language.words()?;
        let mut fl = Self::from_words(words);
        // Keep the full ambient alphabet so that round-trips preserve it.
        fl.alphabet = fl.alphabet.union(language.alphabet());
        Ok(fl)
    }

    /// Extracts the explicit word list of the finite language recognized by an
    /// ε-NFA (Lemma 7.7 entry point, usable for any finite language).
    pub fn from_enfa(enfa: &Enfa) -> Result<FiniteLanguage> {
        Self::from_language(&Language::from_enfa(enfa, None))
    }

    /// The words, sorted by length then lexicographically.
    pub fn words(&self) -> &[Word] {
        &self.words
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the language has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The alphabet (letters occurring in some word, plus any ambient letters
    /// carried over from a [`Language`]).
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Whether `word` belongs to the language.
    pub fn contains(&self, word: &Word) -> bool {
        self.words.iter().any(|w| w == word)
    }

    /// Converts back to a [`Language`].
    pub fn to_language(&self) -> Language {
        Language::from_words(self.words.iter()).with_alphabet(&self.alphabet)
    }

    /// Whether the language is infix-free: no word is a strict infix of another.
    pub fn is_infix_free(&self) -> bool {
        for (i, a) in self.words.iter().enumerate() {
            for (j, b) in self.words.iter().enumerate() {
                if i != j && a.is_strict_infix_of(b) {
                    return false;
                }
            }
        }
        true
    }

    /// The infix-free sublanguage `IF(L)`: words with no strict infix in `L`.
    pub fn infix_free(&self) -> FiniteLanguage {
        let words: Vec<Word> = self
            .words
            .iter()
            .filter(|w| !self.words.iter().any(|other| other.is_strict_infix_of(w)))
            .cloned()
            .collect();
        let mut out = Self::from_words(words);
        out.alphabet = self.alphabet.clone();
        out
    }

    /// A word of the language containing a repeated letter, if any
    /// (the hypothesis of Theorem 6.1).
    pub fn word_with_repeated_letter(&self) -> Option<&Word> {
        self.words.iter().find(|w| w.has_repeated_letter())
    }

    /// A **maximal-gap word** (Definition 6.4): among all decompositions
    /// `β a γ a δ` of all words of the language, pick one maximizing `|γ|`,
    /// breaking ties by maximizing the total word length. Returns `None` when
    /// no word has a repeated letter.
    pub fn maximal_gap_word(&self) -> Option<MaximalGapWord> {
        let mut best: Option<MaximalGapWord> = None;
        for word in &self.words {
            // Enumerate all decompositions of this word.
            for i in 0..word.len() {
                for j in i + 1..word.len() {
                    if word.letter_at(i) != word.letter_at(j) {
                        continue;
                    }
                    let decomposition = RepeatedLetterDecomposition {
                        letter: word.letter_at(i),
                        beta: word.slice(0, i),
                        gamma: word.slice(i + 1, j),
                        delta: word.slice(j + 1, word.len()),
                    };
                    let candidate = MaximalGapWord { word: word.clone(), decomposition };
                    let better = match &best {
                        None => true,
                        Some(b) => {
                            let (gap_c, len_c) = (candidate.gap(), candidate.word.len());
                            let (gap_b, len_b) = (b.gap(), b.word.len());
                            gap_c > gap_b || (gap_c == gap_b && len_c > len_b)
                        }
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
            }
        }
        best
    }

    /// Whether the language is a **chain language** (Definition 7.1):
    /// no word has a repeated letter, and the middle letters of every word of
    /// length ≥ 2 occur in no other word.
    pub fn is_chain_language(&self) -> bool {
        if self.words.iter().any(|w| w.has_repeated_letter()) {
            return false;
        }
        for (i, word) in self.words.iter().enumerate() {
            if word.len() < 2 {
                continue;
            }
            let middle: BTreeSet<Letter> =
                word.letters()[1..word.len() - 1].iter().copied().collect();
            if middle.is_empty() {
                continue;
            }
            for (j, other) in self.words.iter().enumerate() {
                if i == j {
                    continue;
                }
                if other.iter().any(|l| middle.contains(&l)) {
                    return false;
                }
            }
        }
        true
    }

    /// The **endpoint graph** (Definition 7.2): an undirected edge `{a, b}` for
    /// each word of length ≥ 2 with distinct first letter `a` and last letter `b`.
    pub fn endpoint_graph(&self) -> Vec<(Letter, Letter)> {
        let mut edges = BTreeSet::new();
        for word in &self.words {
            if word.len() >= 2 {
                let a = word.first().unwrap();
                let b = word.last().unwrap();
                if a != b {
                    edges.insert((a.min(b), a.max(b)));
                }
            }
        }
        edges.into_iter().collect()
    }

    /// A 2-coloring of the endpoint graph if it is bipartite: returns the two
    /// color classes (source partition, target partition) over endpoint letters.
    pub fn endpoint_bipartition(&self) -> Option<(BTreeSet<Letter>, BTreeSet<Letter>)> {
        let edges = self.endpoint_graph();
        let mut adjacency: BTreeMap<Letter, Vec<Letter>> = BTreeMap::new();
        for &(a, b) in &edges {
            adjacency.entry(a).or_default().push(b);
            adjacency.entry(b).or_default().push(a);
        }
        let mut color: BTreeMap<Letter, bool> = BTreeMap::new();
        for &start in adjacency.keys() {
            if color.contains_key(&start) {
                continue;
            }
            color.insert(start, false);
            let mut queue = vec![start];
            while let Some(v) = queue.pop() {
                let cv = color[&v];
                for &u in &adjacency[&v] {
                    match color.get(&u) {
                        None => {
                            color.insert(u, !cv);
                            queue.push(u);
                        }
                        Some(&cu) if cu == cv => return None,
                        _ => {}
                    }
                }
            }
        }
        let mut sources = BTreeSet::new();
        let mut targets = BTreeSet::new();
        for (l, c) in color {
            if c {
                targets.insert(l);
            } else {
                sources.insert(l);
            }
        }
        Some((sources, targets))
    }

    /// Whether the language is a **bipartite chain language** (BCL,
    /// Definition 7.2): a chain language whose endpoint graph is bipartite.
    pub fn is_bipartite_chain_language(&self) -> bool {
        self.is_chain_language() && self.endpoint_bipartition().is_some()
    }
}

/// A maximal-gap word of a finite language (Definition 6.4): the word together
/// with the decomposition `β a γ a δ` achieving the maximal gap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaximalGapWord {
    /// The word itself (equal to `decomposition.reassemble()`).
    pub word: Word,
    /// The maximal-gap decomposition `β a γ a δ`.
    pub decomposition: RepeatedLetterDecomposition,
}

impl MaximalGapWord {
    /// The gap `|γ|` between the two occurrences of the repeated letter.
    pub fn gap(&self) -> usize {
        self.decomposition.gamma.len()
    }
}

/// A one-dangling decomposition (Definition 7.8): the language is
/// `L ∪ {xy}` where `L` is local over an alphabet `Σ` and `x ≠ y` with at
/// least one of them outside `Σ`.
#[derive(Debug, Clone)]
pub struct OneDanglingDecomposition {
    /// The local part `L` of the decomposition.
    pub local_part: Language,
    /// The first letter of the dangling two-letter word.
    pub x: Letter,
    /// The second letter of the dangling two-letter word.
    pub y: Letter,
}

impl OneDanglingDecomposition {
    /// The dangling word `xy`.
    pub fn dangling_word(&self) -> Word {
        Word::from_letters([self.x, self.y])
    }
}

/// Searches for a one-dangling decomposition of a (possibly infinite) regular
/// language (Definition 7.8). Returns `None` when the language is not
/// one-dangling.
///
/// ```
/// use rpq_automata::{finite, Language};
/// assert!(finite::one_dangling_decomposition(&Language::parse("abc|be").unwrap()).is_some());
/// assert!(finite::one_dangling_decomposition(&Language::parse("ax*b|xd").unwrap()).is_some());
/// assert!(finite::one_dangling_decomposition(&Language::parse("aa").unwrap()).is_none());
/// ```
pub fn one_dangling_decomposition(language: &Language) -> Option<OneDanglingDecomposition> {
    // Candidate dangling words are the length-2 words of the language.
    let length_two: Vec<Word> =
        language.words_up_to_length(2).into_iter().filter(|w| w.len() == 2).collect();
    for word in length_two {
        let x = word.letter_at(0);
        let y = word.letter_at(1);
        if x == y {
            continue;
        }
        let rest = language.difference(&Language::from_words([word.clone()].iter()));
        if !is_local(&rest) {
            continue;
        }
        // The alphabet Σ of the local part is the set of letters actually used
        // by its words; at least one of x, y must lie outside it.
        let used = rest.used_letters();
        if used.contains(x) && used.contains(y) {
            continue;
        }
        // Check that L really decomposes as rest ∪ {xy}.
        let recomposed = rest.union(&Language::from_words([word].iter()));
        if recomposed.equals(language) {
            return Some(OneDanglingDecomposition { local_part: rest, x, y });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Word {
        Word::from_str_word(s)
    }

    fn lang(pattern: &str) -> Language {
        Language::parse(pattern).unwrap()
    }

    #[test]
    fn construction_and_basic_queries() {
        let fl = FiniteLanguage::from_strs(["ab", "bc", "ab"]);
        assert_eq!(fl.len(), 2);
        assert!(fl.contains(&w("ab")));
        assert!(!fl.contains(&w("ac")));
        assert_eq!(fl.alphabet().len(), 3);
        assert!(!fl.is_empty());
        assert!(FiniteLanguage::from_strs([]).is_empty());
    }

    #[test]
    fn from_language_round_trip() {
        let l = lang("ab|ad|cd");
        let fl = FiniteLanguage::from_language(&l).unwrap();
        assert_eq!(fl.words(), &[w("ab"), w("ad"), w("cd")]);
        assert!(fl.to_language().equals(&l));
        assert!(FiniteLanguage::from_language(&lang("ax*b")).is_err());
    }

    #[test]
    fn from_enfa_lemma_7_7() {
        let enfa = crate::regex::Regex::parse("ab|bc").unwrap().to_enfa();
        let fl = FiniteLanguage::from_enfa(&enfa).unwrap();
        assert_eq!(fl.words(), &[w("ab"), w("bc")]);
    }

    #[test]
    fn infix_free_reduction() {
        let fl = FiniteLanguage::from_strs(["abbc", "bb", "a"]);
        assert!(!fl.is_infix_free());
        let reduced = fl.infix_free();
        // abbc contains bb; a is not an infix of bb nor abbc? "a" is an infix of "abbc".
        assert_eq!(reduced.words(), &[w("a"), w("bb")]);
        assert!(reduced.is_infix_free());
    }

    #[test]
    fn repeated_letter_detection() {
        assert!(FiniteLanguage::from_strs(["abc", "aba"]).word_with_repeated_letter().is_some());
        assert!(FiniteLanguage::from_strs(["abc", "bcd"]).word_with_repeated_letter().is_none());
    }

    #[test]
    fn maximal_gap_word_selection() {
        // Among aa (gap 0) and abca (gap 2), the maximal-gap word is abca.
        let fl = FiniteLanguage::from_strs(["aa", "abca"]);
        let mg = fl.maximal_gap_word().unwrap();
        assert_eq!(mg.word, w("abca"));
        assert_eq!(mg.gap(), 2);
        assert_eq!(mg.decomposition.letter, Letter('a'));
        assert_eq!(mg.decomposition.reassemble(), mg.word);

        // Tie on gap: longer word wins. Words axb-a (gap 2) vs axbya? Use
        // gap-1 examples: "aza" (gap 1) vs "bzby" (gap 1, length 4): pick bzby.
        let fl = FiniteLanguage::from_strs(["aza", "bzby"]);
        let mg = fl.maximal_gap_word().unwrap();
        assert_eq!(mg.gap(), 1);
        assert_eq!(mg.word, w("bzby"));

        assert!(FiniteLanguage::from_strs(["abc"]).maximal_gap_word().is_none());
    }

    #[test]
    fn chain_language_examples_from_definition_7_1() {
        // ab|bc and axb|byc are chain languages.
        assert!(FiniteLanguage::from_strs(["ab", "bc"]).is_chain_language());
        assert!(FiniteLanguage::from_strs(["axb", "byc"]).is_chain_language());
        assert!(FiniteLanguage::from_strs(["ab", "bc", "ca"]).is_chain_language());
        assert!(FiniteLanguage::from_strs(["axyb", "bztc", "cd", "dea"]).is_chain_language());
        // aa has a repeated letter: not a chain language.
        assert!(!FiniteLanguage::from_strs(["aa"]).is_chain_language());
        // axb|xyc share the middle letter x with another word: not a chain language.
        assert!(!FiniteLanguage::from_strs(["axb", "xyc"]).is_chain_language());
        // axb|ayc is fine (only endpoints shared)? Middle letters x and y are
        // private, endpoints a shared: chain language.
        assert!(FiniteLanguage::from_strs(["axb", "ayc"]).is_chain_language());
    }

    #[test]
    fn bipartite_chain_languages_example_7_3() {
        // ab|bc and axyb|bztc|cd|dea are BCLs; ab|bc|ca is a chain language
        // but not bipartite.
        assert!(FiniteLanguage::from_strs(["ab", "bc"]).is_bipartite_chain_language());
        assert!(
            FiniteLanguage::from_strs(["axyb", "bztc", "cd", "dea"]).is_bipartite_chain_language()
        );
        let triangle = FiniteLanguage::from_strs(["ab", "bc", "ca"]);
        assert!(triangle.is_chain_language());
        assert!(!triangle.is_bipartite_chain_language());
        assert!(triangle.endpoint_bipartition().is_none());
    }

    #[test]
    fn endpoint_graph_and_bipartition() {
        let fl = FiniteLanguage::from_strs(["ab", "bc"]);
        let edges = fl.endpoint_graph();
        assert_eq!(edges.len(), 2);
        let (sources, targets) = fl.endpoint_bipartition().unwrap();
        // b must be on the opposite side of both a and c.
        let b_in_sources = sources.contains(&Letter('b'));
        if b_in_sources {
            assert!(targets.contains(&Letter('a')) && targets.contains(&Letter('c')));
        } else {
            assert!(sources.contains(&Letter('a')) && sources.contains(&Letter('c')));
        }
    }

    #[test]
    fn chain_languages_are_not_local_in_general() {
        // Example 7.3: none of these chain languages are local.
        for words in [vec!["ab", "bc"], vec!["axyb", "bztc", "cd", "dea"], vec!["ab", "bc", "ca"]] {
            let fl = FiniteLanguage::from_strs(words.iter().copied());
            assert!(!is_local(&fl.to_language()), "{words:?}");
        }
    }

    #[test]
    fn one_dangling_examples_from_the_paper() {
        // abc|be, abcd|ce, abcd|be are one-dangling (Figure 1), as is ax*b|xd.
        for pattern in ["abc|be", "abcd|ce", "abcd|be", "ax*b|xd"] {
            let l = lang(pattern);
            let d = one_dangling_decomposition(&l).unwrap();
            assert_ne!(d.x, d.y, "{pattern}");
            assert!(is_local(&d.local_part), "{pattern}");
            assert!(l.contains(&d.dangling_word()), "{pattern}");
        }
    }

    #[test]
    fn non_one_dangling_languages() {
        for pattern in ["aa", "axb|cxd", "abcd|be|ef", "abcd|bef", "ab|bc|ca"] {
            assert!(one_dangling_decomposition(&lang(pattern)).is_none(), "{pattern}");
        }
    }

    #[test]
    fn ab_bc_is_also_one_dangling() {
        // ab|bc is both a bipartite chain language and a one-dangling language
        // ({bc} is local over {b,c} and a ∉ {b,c}): the tractable classes overlap.
        assert!(one_dangling_decomposition(&lang("ab|bc")).is_some());
    }

    #[test]
    fn one_dangling_decomposition_details() {
        let l = lang("abc|be");
        let d = one_dangling_decomposition(&l).unwrap();
        assert_eq!(d.dangling_word(), w("be"));
        assert!(d.local_part.equals(&lang("abc")));
        // e is the letter outside the local part's alphabet.
        assert!(!d.local_part.used_letters().contains(Letter('e')));
    }
}
