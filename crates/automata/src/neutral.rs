//! Neutral letters (Section 5.2 of the paper).
//!
//! A letter `e` is *neutral* for a language `L` when inserting or deleting `e`
//! anywhere in a word does not change membership: for every `α, β ∈ Σ*`,
//! `αβ ∈ L ⟺ αeβ ∈ L`. Proposition 5.7 gives a full dichotomy for languages
//! with a neutral letter: resilience is PTIME when `IF(L)` is local, and
//! NP-hard otherwise.
//!
//! The test used here: `e` is neutral for `L` iff membership of a word only
//! depends on the word with all `e`s erased, i.e.
//! `L = erase_e⁻¹(L ∩ (Σ\{e})*)`.

use crate::alphabet::{Alphabet, Letter};
use crate::dfa::Dfa;
use crate::language::Language;

/// Whether `e` is a neutral letter for `language`.
///
/// ```
/// use rpq_automata::{neutral, Language, alphabet::Letter};
/// let l = Language::parse("e*be*ce*|e*de*fe*").unwrap();
/// assert!(neutral::is_neutral_letter(&l, Letter('e')));
/// assert!(!neutral::is_neutral_letter(&l, Letter('b')));
/// ```
pub fn is_neutral_letter(language: &Language, e: Letter) -> bool {
    let alphabet = language.alphabet();
    if !alphabet.contains(e) {
        // A letter outside the alphabet is vacuously neutral only if no word
        // uses it, which is automatic; but inserting it must keep membership,
        // and the language over the extended alphabet would not contain such
        // words. So a letter outside the alphabet is neutral iff L is empty.
        return language.is_empty();
    }
    let dfa = language.dfa();
    // M = L ∩ (Σ \ {e})*  (same DFA with every e-transition redirected to a sink).
    let restricted = restrict_letter_to_sink(dfa, e);
    // N = erase_e⁻¹(M): same DFA as M but e becomes a self-loop on every state.
    let lifted = self_loop_letter(&restricted, e);
    lifted.equivalent(dfa)
}

/// All neutral letters of the language.
pub fn neutral_letters(language: &Language) -> Vec<Letter> {
    language.alphabet().iter().filter(|&e| is_neutral_letter(language, e)).collect()
}

/// Same automaton, with every `e`-transition redirected to a fresh rejecting sink.
fn restrict_letter_to_sink(dfa: &Dfa, e: Letter) -> Dfa {
    let n = dfa.num_states();
    let sink = n;
    let alphabet: Alphabet = dfa.alphabet().clone();
    let mut transitions = Vec::with_capacity(n + 1);
    for s in 0..n {
        let row: Vec<usize> = alphabet
            .iter()
            .map(|l| if l == e { sink } else { dfa.successor(s, l).expect("complete DFA") })
            .collect();
        transitions.push(row);
    }
    transitions.push(vec![sink; alphabet.len()]);
    let mut finals: Vec<bool> = (0..n).map(|s| dfa.is_final(s)).collect();
    finals.push(false);
    Dfa::from_parts(alphabet, dfa.initial_state(), finals, transitions)
}

/// Same automaton, with the `e`-transition of every state turned into a self-loop.
fn self_loop_letter(dfa: &Dfa, e: Letter) -> Dfa {
    let n = dfa.num_states();
    let alphabet: Alphabet = dfa.alphabet().clone();
    let mut transitions = Vec::with_capacity(n);
    for s in 0..n {
        let row: Vec<usize> = alphabet
            .iter()
            .map(|l| if l == e { s } else { dfa.successor(s, l).expect("complete DFA") })
            .collect();
        transitions.push(row);
    }
    let finals: Vec<bool> = (0..n).map(|s| dfa.is_final(s)).collect();
    Dfa::from_parts(alphabet, dfa.initial_state(), finals, transitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Word;

    fn lang(pattern: &str) -> Language {
        Language::parse(pattern).unwrap()
    }

    #[test]
    fn paper_examples_l1_and_l2() {
        // L1 = e*be*ce*|e*de*fe* and L2 = e*(a|c)e*(a|d)e* both have e neutral.
        let l1 = lang("e*be*ce*|e*de*fe*");
        assert!(is_neutral_letter(&l1, Letter('e')));
        assert_eq!(neutral_letters(&l1), vec![Letter('e')]);

        let l2 = lang("e*(a|c)e*(a|d)e*");
        assert!(is_neutral_letter(&l2, Letter('e')));
        assert!(!is_neutral_letter(&l2, Letter('a')));
    }

    #[test]
    fn non_neutral_letters() {
        let l = lang("ax*b");
        assert!(!is_neutral_letter(&l, Letter('a')));
        assert!(!is_neutral_letter(&l, Letter('x')));
        assert!(!is_neutral_letter(&l, Letter('b')));
        assert!(neutral_letters(&l).is_empty());
    }

    #[test]
    fn star_letter_is_not_automatically_neutral() {
        // In a x* b, the letter x is NOT neutral: ab ∈ L but axb ∈ L too,
        // however for α=a x, β=b: a x b ∈ L and a x x b ∈ L... the failing pair
        // is α=ε, β=ab: ab ∈ L but xab ∉ L.
        let l = lang("ax*b");
        assert!(l.contains(&Word::from_str_word("ab")));
        assert!(!l.contains(&Word::from_str_word("xab")));
        assert!(!is_neutral_letter(&l, Letter('x')));
    }

    #[test]
    fn fully_padded_language_has_neutral_letter() {
        // e* (a) e* : e is neutral.
        let l = lang("e*ae*");
        assert!(is_neutral_letter(&l, Letter('e')));
        // And the infix-free sublanguage is {a}, which is local.
        let if_l = l.infix_free();
        assert!(if_l.equals(&Language::from_strs(["a"])));
    }

    #[test]
    fn letter_outside_alphabet() {
        let l = lang("ab");
        assert!(!is_neutral_letter(&l, Letter('z')));
        let empty = Language::empty(Alphabet::from_chars("ab"));
        assert!(is_neutral_letter(&empty, Letter('z')));
    }

    #[test]
    fn neutrality_definition_spot_check() {
        // Directly check the defining property on samples for L1.
        let l1 = lang("e*be*ce*|e*de*fe*");
        for (alpha, beta) in
            [("b", "c"), ("be", "c"), ("", "bc"), ("d", "f"), ("bc", ""), ("b", "d")]
        {
            let without = Word::from_str_word(&format!("{alpha}{beta}"));
            let with = Word::from_str_word(&format!("{alpha}e{beta}"));
            assert_eq!(l1.contains(&without), l1.contains(&with), "α={alpha} β={beta}");
        }
    }
}
