//! Transition monoids of regular languages.
//!
//! The **transition monoid** of a (complete, minimal) DFA is the set of state
//! transformations induced by words, under composition. It is a finite
//! algebraic invariant of the language that underlies two notions used by the
//! paper:
//!
//! * **star-freeness / aperiodicity** (Lemma 5.6): a language is star-free iff
//!   its syntactic monoid — here, the transition monoid of the minimal DFA —
//!   is aperiodic, i.e. every element `m` satisfies `m^k = m^{k+1}` for some
//!   `k` (Schützenberger's theorem). [`TransitionMonoid::is_aperiodic`] is an
//!   independent implementation of the test in [`crate::star_free`], and the
//!   two are cross-checked in the tests.
//! * general language analysis: the monoid exposes its elements with shortest
//!   witness words, its idempotents, and evaluation of arbitrary words, which
//!   are convenient building blocks for further classification experiments.
//!
//! The monoid can be exponentially larger than the DFA; construction takes an
//! explicit element budget and fails gracefully when it is exceeded.

use crate::alphabet::Letter;
use crate::error::{AutomataError, Result};
use crate::language::Language;
use crate::word::Word;
use std::collections::BTreeMap;

/// Default maximum number of monoid elements explored.
pub const DEFAULT_ELEMENT_BUDGET: usize = 100_000;

/// A state transformation: the image of each state of the (completed) DFA.
pub type Transformation = Vec<usize>;

/// The transition monoid of the minimal DFA of a language.
#[derive(Debug, Clone)]
pub struct TransitionMonoid {
    /// The distinct transformations, indexed by discovery order; element 0 is
    /// the identity (induced by ε).
    elements: Vec<Transformation>,
    /// A shortest word inducing each element.
    witnesses: Vec<Word>,
    /// Lookup table from transformation to its index.
    index: BTreeMap<Transformation, usize>,
    /// The transformation induced by each letter of the alphabet.
    generators: BTreeMap<Letter, Transformation>,
    /// Number of DFA states the transformations act on.
    degree: usize,
}

impl TransitionMonoid {
    /// Computes the transition monoid of the minimal DFA of `language`, using
    /// the default element budget.
    pub fn of(language: &Language) -> Result<TransitionMonoid> {
        TransitionMonoid::with_budget(language, DEFAULT_ELEMENT_BUDGET)
    }

    /// Computes the transition monoid with an explicit element budget.
    pub fn with_budget(language: &Language, budget: usize) -> Result<TransitionMonoid> {
        let dfa = language.dfa().minimize();
        let n = dfa.num_states();
        let generators: BTreeMap<Letter, Transformation> = dfa
            .alphabet()
            .iter()
            .map(|a| {
                let transformation: Transformation = (0..n)
                    .map(|s| dfa.successor(s, a).expect("minimized DFAs are complete"))
                    .collect();
                (a, transformation)
            })
            .collect();

        let identity: Transformation = (0..n).collect();
        let mut elements = vec![identity.clone()];
        let mut witnesses = vec![Word::epsilon()];
        let mut index: BTreeMap<Transformation, usize> = BTreeMap::new();
        index.insert(identity, 0);

        let mut frontier = 0;
        while frontier < elements.len() {
            let current = elements[frontier].clone();
            let current_witness = witnesses[frontier].clone();
            frontier += 1;
            for (letter, generator) in &generators {
                let next: Transformation = current.iter().map(|&s| generator[s]).collect();
                if !index.contains_key(&next) {
                    if elements.len() >= budget {
                        return Err(AutomataError::BudgetExceeded {
                            analysis: "transition monoid construction",
                            limit: budget,
                        });
                    }
                    index.insert(next.clone(), elements.len());
                    elements.push(next);
                    witnesses.push(current_witness.concat(&Word::single(*letter)));
                }
            }
        }
        Ok(TransitionMonoid { elements, witnesses, index, generators, degree: n })
    }

    /// Number of elements of the monoid (including the identity).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the monoid is trivial (identity only — the language is `∅`, `Σ*`
    /// or otherwise letter-insensitive on the minimal DFA).
    pub fn is_empty(&self) -> bool {
        self.elements.len() <= 1
    }

    /// The number of DFA states the transformations act on.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The transformations, in discovery order (index 0 is the identity).
    pub fn elements(&self) -> &[Transformation] {
        &self.elements
    }

    /// A shortest word inducing the element at `index`.
    pub fn witness(&self, index: usize) -> &Word {
        &self.witnesses[index]
    }

    /// Evaluates a word to the index of the transformation it induces.
    /// Panics if the word uses a letter outside the language's alphabet.
    pub fn evaluate(&self, word: &Word) -> usize {
        let mut current: Transformation = (0..self.degree).collect();
        for letter in word.iter() {
            let generator = self
                .generators
                .get(&letter)
                .unwrap_or_else(|| panic!("letter {letter} is not in the alphabet"));
            current = current.iter().map(|&s| generator[s]).collect();
        }
        self.index[&current]
    }

    /// Composition of two elements given by index: `first ⋅ then` (apply
    /// `first`, then `then`).
    pub fn compose(&self, first: usize, then: usize) -> usize {
        let composed: Transformation =
            self.elements[first].iter().map(|&s| self.elements[then][s]).collect();
        self.index[&composed]
    }

    /// The indices of the idempotent elements (`e ⋅ e = e`).
    pub fn idempotents(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.compose(i, i) == i).collect()
    }

    /// Whether the monoid is aperiodic: every element `m` satisfies
    /// `m^k = m^{k+1}` for some `k`. By Schützenberger's theorem this holds
    /// iff the language is star-free, which is the hypothesis manipulated by
    /// Lemma 5.6 of the paper.
    pub fn is_aperiodic(&self) -> bool {
        (0..self.len()).all(|m| {
            // Iterate powers of m until they stabilize or cycle.
            let mut seen = vec![m];
            let mut current = m;
            loop {
                let next = self.compose(current, m);
                if next == current {
                    return true;
                }
                if seen.contains(&next) {
                    return false;
                }
                seen.push(next);
                current = next;
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::star_free::is_star_free;

    fn lang(pattern: &str) -> Language {
        Language::parse(pattern).unwrap()
    }

    #[test]
    fn aperiodicity_agrees_with_the_star_free_test() {
        for pattern in [
            "ax*b",
            "ab|ad|cd",
            "aa",
            "axb|cxd",
            "b(aa)*d",
            "abc|be",
            "a(b|d)*x",
            "(aa)*",
            "a*",
            "abca|cab",
            "e*(a|c)e*(a|d)e*",
        ] {
            let language = lang(pattern);
            let monoid = TransitionMonoid::of(&language).unwrap();
            assert_eq!(
                monoid.is_aperiodic(),
                is_star_free(&language).unwrap(),
                "{pattern}: monoid aperiodicity must match the star-freeness test"
            );
        }
    }

    #[test]
    fn finite_languages_are_always_aperiodic() {
        for pattern in ["aa", "abca", "ab|bc|ca", "abcd|be|ef"] {
            let monoid = TransitionMonoid::of(&lang(pattern)).unwrap();
            assert!(monoid.is_aperiodic(), "{pattern}");
        }
    }

    #[test]
    fn witnesses_induce_their_elements() {
        let language = lang("ax*b");
        let monoid = TransitionMonoid::of(&language).unwrap();
        assert!(monoid.len() > 1);
        assert!(!monoid.is_empty());
        assert_eq!(monoid.witness(0), &Word::epsilon());
        // Every element is induced by its own witness word.
        for i in 0..monoid.len() {
            assert_eq!(monoid.evaluate(monoid.witness(i)), i);
        }
        // Word evaluation is a morphism: eval(uv) = eval(u) ⋅ eval(v).
        let u = Word::from_str_word("ax");
        let v = Word::from_str_word("xb");
        assert_eq!(
            monoid.evaluate(&u.concat(&v)),
            monoid.compose(monoid.evaluate(&u), monoid.evaluate(&v))
        );
        // Idempotents exist (at least the absorbing sink transformation).
        assert!(!monoid.idempotents().is_empty());
        // Composition is associative on a few sampled triples.
        let k = monoid.len();
        for a in 0..k.min(5) {
            for b in 0..k.min(5) {
                for c in 0..k.min(5) {
                    assert_eq!(
                        monoid.compose(monoid.compose(a, b), c),
                        monoid.compose(a, monoid.compose(b, c))
                    );
                }
            }
        }
    }

    #[test]
    fn periodic_language_has_a_non_aperiodic_element() {
        let monoid = TransitionMonoid::of(&lang("(aa)*")).unwrap();
        assert!(!monoid.is_aperiodic());
        // The a-generator cycles with period 2: its powers never stabilize.
        let degree = monoid.degree();
        assert!(degree >= 2);
    }

    #[test]
    fn budget_is_enforced() {
        let err = TransitionMonoid::with_budget(&lang("ab|ad|cd"), 1).unwrap_err();
        assert!(matches!(err, AutomataError::BudgetExceeded { .. }));
    }
}
