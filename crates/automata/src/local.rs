//! Local languages (Section 3.1 of the paper).
//!
//! A language is *local* when membership is determined by which letters may
//! start a word, which letters may end a word, and which pairs of letters may
//! occur consecutively (Definition 3.1 via local DFAs, and the equivalent
//! *letter-Cartesian* characterization of Definition 3.3 / Proposition 3.5).
//!
//! This module computes the **local profile** `(Σ_start, Σ_end, Π)` of a
//! language, builds its **local overapproximation** (Definition 3.8) and tests
//! locality (Claim 3.11 / Proposition 3.12).

use crate::alphabet::{Alphabet, Letter};
use crate::dfa::Dfa;
use crate::language::Language;
use std::collections::BTreeSet;

/// The local profile of a language: starting letters, ending letters, allowed
/// digrams, and whether ε belongs to the language (Definition 3.8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalProfile {
    /// Letters that can start a word of the language (`Σ_start`).
    pub start_letters: Alphabet,
    /// Letters that can end a word of the language (`Σ_end`).
    pub end_letters: Alphabet,
    /// Pairs of letters that can occur consecutively in a word (`Π ⊆ Σ²`).
    pub digrams: BTreeSet<(Letter, Letter)>,
    /// Whether ε is a word of the language.
    pub contains_epsilon: bool,
    /// The alphabet over which the profile was computed.
    pub alphabet: Alphabet,
}

impl LocalProfile {
    /// Computes the local profile of a language from its minimal DFA.
    pub fn of(language: &Language) -> LocalProfile {
        let dfa = language.dfa();
        let alphabet = language.alphabet().clone();
        let reachable = dfa.reachable_states();
        let coaccessible = dfa.coaccessible_states();

        let mut start_letters = Vec::new();
        let mut end_letters = Vec::new();
        let mut digrams = BTreeSet::new();

        // Σ_start: letters a with a word aα ∈ L, i.e. the initial state has an
        // a-successor from which a final state is reachable.
        for a in alphabet.iter() {
            if let Some(q) = dfa.successor(dfa.initial_state(), a) {
                if coaccessible.contains(&q) {
                    start_letters.push(a);
                }
            }
        }

        // Σ_end: letters a with a word αa ∈ L, i.e. some reachable state has an
        // a-transition into a final state.
        for &p in &reachable {
            for a in alphabet.iter() {
                if let Some(q) = dfa.successor(p, a) {
                    if dfa.is_final(q) {
                        end_letters.push(a);
                    }
                }
            }
        }

        // Π: pairs (a, b) with a word αabβ ∈ L, i.e. a reachable state p has an
        // a-successor q whose b-successor r is co-accessible.
        for &p in &reachable {
            for a in alphabet.iter() {
                if let Some(q) = dfa.successor(p, a) {
                    for b in alphabet.iter() {
                        if let Some(r) = dfa.successor(q, b) {
                            if coaccessible.contains(&r) {
                                digrams.insert((a, b));
                            }
                        }
                    }
                }
            }
        }

        LocalProfile {
            start_letters: Alphabet::from_letters(start_letters),
            end_letters: Alphabet::from_letters(end_letters),
            digrams,
            contains_epsilon: language.contains_epsilon(),
            alphabet,
        }
    }

    /// Builds the **local overapproximation** DFA of Definition 3.8: the local
    /// DFA with a state `q_a` per letter, accepting every word whose first
    /// letter is in `Σ_start`, whose last letter is in `Σ_end`, and whose
    /// consecutive letter pairs are all in `Π`.
    ///
    /// By Claim 3.9 its language always contains the original language, and by
    /// Claim 3.10 it *equals* the original language exactly when the language
    /// is local (letter-Cartesian).
    pub fn local_overapproximation(&self) -> Dfa {
        let width = self.alphabet.len();
        // State layout: 0 = q0 (initial), 1 + i = q_{letter i}, last = sink.
        let num_states = 2 + width;
        let sink = num_states - 1;
        let mut transitions = vec![vec![sink; width]; num_states];
        let mut finals = vec![false; num_states];

        finals[0] = self.contains_epsilon;
        for (i, a) in self.alphabet.iter().enumerate() {
            finals[1 + i] = self.end_letters.contains(a);
            if self.start_letters.contains(a) {
                transitions[0][i] = 1 + i;
            }
        }
        for &(a, b) in &self.digrams {
            let (ia, ib) = (
                self.alphabet.index_of(a).expect("digram letter in alphabet"),
                self.alphabet.index_of(b).expect("digram letter in alphabet"),
            );
            transitions[1 + ia][ib] = 1 + ib;
        }
        Dfa::from_parts(self.alphabet.clone(), 0, finals, transitions)
    }
}

/// Whether the language is **local** (Definition 3.1): some local DFA
/// recognizes it, equivalently it is letter-Cartesian (Proposition 3.5),
/// equivalently its local overapproximation has the same language (Claim 3.11).
///
/// ```
/// use rpq_automata::{local, Language};
/// assert!(local::is_local(&Language::parse("a x* b").unwrap()));
/// assert!(local::is_local(&Language::parse("ab|ad|cd").unwrap()));
/// assert!(!local::is_local(&Language::parse("aa").unwrap()));
/// assert!(!local::is_local(&Language::parse("ab|bc").unwrap()));
/// ```
pub fn is_local(language: &Language) -> bool {
    let profile = LocalProfile::of(language);
    let overapprox = profile.local_overapproximation();
    overapprox.equivalent(language.dfa())
}

/// Builds a **local DFA** for a local language (the local overapproximation,
/// which coincides with the language). Returns `None` if the language is not
/// local.
pub fn local_dfa(language: &Language) -> Option<Dfa> {
    let profile = LocalProfile::of(language);
    let overapprox = profile.local_overapproximation();
    if overapprox.equivalent(language.dfa()) {
        Some(overapprox)
    } else {
        None
    }
}

/// A counterexample to the letter-Cartesian property (Definition 3.3): a body
/// letter `x` and words `α, β, γ, δ` such that `αxβ ∈ L`, `γxδ ∈ L` but
/// `αxδ ∉ L`. The legs may be empty; the four-legged test of Section 5
/// additionally requires them non-empty (see [`crate::four_legged`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CartesianViolation {
    /// The body letter `x`.
    pub body: Letter,
    /// `α` (what precedes `x` in the first word).
    pub alpha: crate::word::Word,
    /// `β` (what follows `x` in the first word).
    pub beta: crate::word::Word,
    /// `γ` (what precedes `x` in the second word).
    pub gamma: crate::word::Word,
    /// `δ` (what follows `x` in the second word).
    pub delta: crate::word::Word,
}

impl CartesianViolation {
    /// The word `αxβ` (must be in the language).
    pub fn first_word(&self) -> crate::word::Word {
        let x = crate::word::Word::single(self.body);
        crate::word::Word::concat_all([&self.alpha, &x, &self.beta])
    }

    /// The word `γxδ` (must be in the language).
    pub fn second_word(&self) -> crate::word::Word {
        let x = crate::word::Word::single(self.body);
        crate::word::Word::concat_all([&self.gamma, &x, &self.delta])
    }

    /// The cross-product word `αxδ` (must *not* be in the language).
    pub fn cross_word(&self) -> crate::word::Word {
        let x = crate::word::Word::single(self.body);
        crate::word::Word::concat_all([&self.alpha, &x, &self.delta])
    }

    /// Checks that the violation is genuine for `language`.
    pub fn verify(&self, language: &Language) -> bool {
        language.contains(&self.first_word())
            && language.contains(&self.second_word())
            && !language.contains(&self.cross_word())
    }

    /// Whether all four legs are non-empty (the four-legged condition).
    pub fn has_nonempty_legs(&self) -> bool {
        !self.alpha.is_empty()
            && !self.beta.is_empty()
            && !self.gamma.is_empty()
            && !self.delta.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Word;

    fn lang(pattern: &str) -> Language {
        Language::parse(pattern).unwrap()
    }

    #[test]
    fn figure_2_languages_are_local() {
        assert!(is_local(&lang("ax*b")));
        assert!(is_local(&lang("ab|ad|cd")));
    }

    #[test]
    fn example_3_4_aa_is_not_local() {
        assert!(!is_local(&lang("aa")));
    }

    #[test]
    fn more_locality_examples_from_figure_1() {
        // Local examples
        assert!(is_local(&lang("axb|axc")));
        assert!(is_local(&lang("a|b")));
        // Non-local examples
        assert!(!is_local(&lang("ax*b|cxd")));
        assert!(!is_local(&lang("ab|bc")));
        assert!(!is_local(&lang("abc|bcd")));
        assert!(!is_local(&lang("aaaa")));
        assert!(!is_local(&lang("axb|cxd")));
        assert!(!is_local(&lang("b(aa)*d")));
        assert!(!is_local(&lang("abc|be")));
    }

    #[test]
    fn profile_of_ab_ad_cd() {
        let profile = LocalProfile::of(&lang("ab|ad|cd"));
        assert!(profile.start_letters.contains(Letter('a')));
        assert!(profile.start_letters.contains(Letter('c')));
        assert!(!profile.start_letters.contains(Letter('b')));
        assert!(profile.end_letters.contains(Letter('b')));
        assert!(profile.end_letters.contains(Letter('d')));
        assert!(!profile.end_letters.contains(Letter('a')));
        assert!(profile.digrams.contains(&(Letter('a'), Letter('b'))));
        assert!(profile.digrams.contains(&(Letter('a'), Letter('d'))));
        assert!(profile.digrams.contains(&(Letter('c'), Letter('d'))));
        assert_eq!(profile.digrams.len(), 3);
        assert!(!profile.contains_epsilon);
    }

    #[test]
    fn profile_of_infinite_language() {
        let profile = LocalProfile::of(&lang("ax*b"));
        assert_eq!(profile.start_letters.letters(), &[Letter('a')]);
        assert_eq!(profile.end_letters.letters(), &[Letter('b')]);
        assert!(profile.digrams.contains(&(Letter('a'), Letter('x'))));
        assert!(profile.digrams.contains(&(Letter('x'), Letter('x'))));
        assert!(profile.digrams.contains(&(Letter('x'), Letter('b'))));
        assert!(profile.digrams.contains(&(Letter('a'), Letter('b'))));
        assert_eq!(profile.digrams.len(), 4);
    }

    #[test]
    fn overapproximation_contains_language() {
        for pattern in ["aa", "ab|bc", "axb|cxd", "ax*b", "abc|bcd", "b(aa)*d"] {
            let l = lang(pattern);
            let over = LocalProfile::of(&l).local_overapproximation();
            assert!(l.dfa().is_subset_of(&over), "L ⊆ overapprox fails for {pattern}");
        }
    }

    #[test]
    fn overapproximation_of_aa_accepts_longer_words() {
        // The local overapproximation of {aa} is a⁺ (Σ_start = Σ_end = {a},
        // Π = {(a,a)}), which strictly contains {aa}: this is why aa is not local.
        let over = LocalProfile::of(&lang("aa")).local_overapproximation();
        assert!(over.accepts(&Word::from_str_word("a")));
        assert!(over.accepts(&Word::from_str_word("aa")));
        assert!(over.accepts(&Word::from_str_word("aaa")));
        assert!(!over.accepts(&Word::epsilon()));
    }

    #[test]
    fn local_dfa_returned_only_for_local_languages() {
        assert!(local_dfa(&lang("ax*b")).is_some());
        assert!(local_dfa(&lang("aa")).is_none());
        let d = local_dfa(&lang("ab|ad|cd")).unwrap();
        assert!(d.accepts(&Word::from_str_word("ad")));
        assert!(!d.accepts(&Word::from_str_word("cb")));
    }

    #[test]
    fn epsilon_language_is_local() {
        assert!(is_local(&lang("ε")));
        assert!(is_local(&lang("∅")));
        assert!(is_local(&lang("a*")));
        assert!(is_local(&lang("a")));
    }

    #[test]
    fn infix_free_preserves_locality_lemma_3_14() {
        // Lemma 3.14: if L is local then IF(L) is local.
        for pattern in ["ax*b", "ab|ad|cd", "a*", "a(b|c)*d", "x*ax*"] {
            let l = lang(pattern);
            if is_local(&l) {
                assert!(is_local(&l.infix_free()), "IF({pattern}) should be local");
            }
        }
    }

    #[test]
    fn cartesian_violation_structure() {
        // Hand-built violation for aa (Example 3.4): x=a, α=a, β=ε, γ=ε, δ=a.
        let v = CartesianViolation {
            body: Letter('a'),
            alpha: Word::from_str_word("a"),
            beta: Word::epsilon(),
            gamma: Word::epsilon(),
            delta: Word::from_str_word("a"),
        };
        assert!(v.verify(&lang("aa")));
        assert!(!v.has_nonempty_legs());
        assert_eq!(v.first_word(), Word::from_str_word("aa"));
        assert_eq!(v.second_word(), Word::from_str_word("aa"));
        assert_eq!(v.cross_word(), Word::from_str_word("aaa"));
    }
}
