//! # `rpq-automata`: formal-language substrate for RPQ resilience
//!
//! This crate implements every language-theoretic tool needed by the paper
//! *"Resilience for Regular Path Queries: Towards a Complexity Classification"*
//! (PODS 2025):
//!
//! * regular-expression parsing and Thompson construction ([`regex`]),
//! * ε-NFAs, NFAs and DFAs with the usual closure operations ([`enfa`], [`nfa`], [`dfa`]),
//! * a high-level [`Language`](language::Language) handle (membership, finiteness,
//!   infix-free sublanguage `IF(L)`, mirror, Boolean operations),
//! * **local languages** and their equivalent letter-Cartesian characterization
//!   ([`local`], Definition 3.1 / Proposition 3.5 of the paper),
//! * **read-once ε-NFAs** ([`ro_enfa`], Definition 3.15 / Lemma 3.17),
//! * **four-legged languages** ([`four_legged`], Definition 5.1 / Lemma 5.5),
//! * star-freeness / aperiodicity ([`star_free`], used for Lemma 5.6),
//! * neutral letters ([`neutral`], used for Proposition 5.7),
//! * finite-language utilities: repeated letters, maximal-gap words, chain
//!   languages and bipartiteness, one-dangling decompositions ([`finite`],
//!   Sections 6 and 7).
//!
//! The crate has no dependencies and is deliberately self-contained: the other
//! crates of the workspace (graph databases, flow networks, resilience
//! algorithms) build on top of it.
//!
//! ## Quick example
//!
//! ```
//! use rpq_automata::prelude::*;
//!
//! // The language a x* b from the paper's introduction (Figure 2a).
//! let lang = Language::parse("a x* b").unwrap();
//! assert!(lang.contains_str("axxb").unwrap());
//! assert!(rpq_automata::local::is_local(&lang));
//!
//! // The language aa is not local (Example 3.4) and has a repeated letter.
//! let aa = Language::parse("a a").unwrap();
//! assert!(!rpq_automata::local::is_local(&aa));
//! ```

#![forbid(unsafe_code)]
pub mod alphabet;
pub mod derivative;
pub mod dfa;
pub mod enfa;
pub mod error;
pub mod finite;
pub mod four_legged;
pub mod language;
pub mod local;
pub mod monoid;
pub mod neutral;
pub mod nfa;
pub mod regex;
pub mod ro_enfa;
pub mod star_free;
pub mod word;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::alphabet::{Alphabet, Letter};
    pub use crate::dfa::Dfa;
    pub use crate::enfa::Enfa;
    pub use crate::error::AutomataError;
    pub use crate::finite::FiniteLanguage;
    pub use crate::language::Language;
    pub use crate::regex::Regex;
    pub use crate::ro_enfa::RoEnfa;
    pub use crate::word::Word;
}

pub use alphabet::{Alphabet, Letter};
pub use error::AutomataError;
pub use language::Language;
pub use word::Word;
