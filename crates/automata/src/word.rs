//! Words over an alphabet.
//!
//! A word is a finite sequence of letters. This module provides the
//! word-combinatorics notions used throughout the paper: infix / prefix /
//! suffix relations (and their *strict* variants), mirrors, repeated letters,
//! and the letter-gap machinery used by the maximal-gap words of Section 6.

use crate::alphabet::{Alphabet, Letter};
use std::fmt;

/// A word over an alphabet: a finite (possibly empty) sequence of letters.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Word {
    letters: Vec<Letter>,
}

impl Word {
    /// The empty word ε.
    pub fn epsilon() -> Self {
        Word { letters: Vec::new() }
    }

    /// Creates a word from a sequence of letters.
    pub fn from_letters<I: IntoIterator<Item = Letter>>(iter: I) -> Self {
        Word { letters: iter.into_iter().collect() }
    }

    /// Creates a word from a string, one letter per character (e.g. `"axb"`).
    pub fn from_str_word(s: &str) -> Self {
        Word { letters: s.chars().map(Letter).collect() }
    }

    /// Creates a single-letter word.
    pub fn single(letter: Letter) -> Self {
        Word { letters: vec![letter] }
    }

    /// Length of the word.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// Whether the word is the empty word ε.
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// The letters of the word.
    pub fn letters(&self) -> &[Letter] {
        &self.letters
    }

    /// Iterator over letters.
    pub fn iter(&self) -> impl Iterator<Item = Letter> + '_ {
        self.letters.iter().copied()
    }

    /// The letter at position `i` (panics if out of range).
    pub fn letter_at(&self, i: usize) -> Letter {
        self.letters[i]
    }

    /// First letter, if the word is non-empty.
    pub fn first(&self) -> Option<Letter> {
        self.letters.first().copied()
    }

    /// Last letter, if the word is non-empty.
    pub fn last(&self) -> Option<Letter> {
        self.letters.last().copied()
    }

    /// Concatenation `self · other`.
    pub fn concat(&self, other: &Word) -> Word {
        let mut letters = Vec::with_capacity(self.len() + other.len());
        letters.extend_from_slice(&self.letters);
        letters.extend_from_slice(&other.letters);
        Word { letters }
    }

    /// Concatenation of several words.
    pub fn concat_all<'a, I: IntoIterator<Item = &'a Word>>(words: I) -> Word {
        let mut letters = Vec::new();
        for w in words {
            letters.extend_from_slice(&w.letters);
        }
        Word { letters }
    }

    /// The word repeated `n` times.
    pub fn repeat(&self, n: usize) -> Word {
        let mut letters = Vec::with_capacity(self.len() * n);
        for _ in 0..n {
            letters.extend_from_slice(&self.letters);
        }
        Word { letters }
    }

    /// The mirror (reversal) of the word (Section 6, "mirror operation").
    pub fn mirror(&self) -> Word {
        Word { letters: self.letters.iter().rev().copied().collect() }
    }

    /// The sub-word on positions `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Word {
        Word { letters: self.letters[start..end].to_vec() }
    }

    /// Whether `self` is a prefix of `other`.
    pub fn is_prefix_of(&self, other: &Word) -> bool {
        other.letters.len() >= self.letters.len()
            && other.letters[..self.letters.len()] == self.letters[..]
    }

    /// Whether `self` is a *strict* prefix of `other` (prefix and shorter).
    pub fn is_strict_prefix_of(&self, other: &Word) -> bool {
        self.len() < other.len() && self.is_prefix_of(other)
    }

    /// Whether `self` is a suffix of `other`.
    pub fn is_suffix_of(&self, other: &Word) -> bool {
        other.letters.len() >= self.letters.len()
            && other.letters[other.letters.len() - self.letters.len()..] == self.letters[..]
    }

    /// Whether `self` is a *strict* suffix of `other` (suffix and shorter).
    pub fn is_strict_suffix_of(&self, other: &Word) -> bool {
        self.len() < other.len() && self.is_suffix_of(other)
    }

    /// Whether `self` is an infix (factor) of `other`.
    pub fn is_infix_of(&self, other: &Word) -> bool {
        if self.is_empty() {
            return true;
        }
        if self.len() > other.len() {
            return false;
        }
        other.letters.windows(self.len()).any(|w| w == self.letters.as_slice())
    }

    /// Whether `self` is a *strict* infix of `other`.
    ///
    /// Following the paper, `α` is a strict infix of `β` when `β = δαγ` with
    /// `δγ ≠ ε`, i.e. `α` is an infix of `β` and `|α| < |β|`.
    pub fn is_strict_infix_of(&self, other: &Word) -> bool {
        self.len() < other.len() && self.is_infix_of(other)
    }

    /// All infixes of the word (including ε and the word itself), deduplicated.
    pub fn infixes(&self) -> Vec<Word> {
        let mut out = std::collections::BTreeSet::new();
        out.insert(Word::epsilon());
        for i in 0..self.len() {
            for j in i + 1..=self.len() {
                out.insert(self.slice(i, j));
            }
        }
        out.into_iter().collect()
    }

    /// All strict infixes of the word.
    pub fn strict_infixes(&self) -> Vec<Word> {
        self.infixes().into_iter().filter(|w| w.len() < self.len()).collect()
    }

    /// Whether the word contains a repeated letter, i.e. can be written
    /// `β a γ a δ` for a letter `a` (Section 6).
    pub fn has_repeated_letter(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        self.letters.iter().any(|l| !seen.insert(*l))
    }

    /// The largest "gap" between two occurrences of the same letter, together
    /// with the decomposition `β a γ a δ` achieving it.
    ///
    /// Returns `None` when the word has no repeated letter. When it does,
    /// returns `(a, β, γ, δ)` such that `self = β a γ a δ` and `|γ|` is maximal
    /// over all such decompositions (Definition 6.4's first criterion applied
    /// to a single word).
    pub fn max_gap_decomposition(&self) -> Option<RepeatedLetterDecomposition> {
        let mut best: Option<RepeatedLetterDecomposition> = None;
        for i in 0..self.len() {
            for j in i + 1..self.len() {
                if self.letters[i] == self.letters[j] {
                    let gamma_len = j - i - 1;
                    let candidate = RepeatedLetterDecomposition {
                        letter: self.letters[i],
                        beta: self.slice(0, i),
                        gamma: self.slice(i + 1, j),
                        delta: self.slice(j + 1, self.len()),
                    };
                    let better = match &best {
                        None => true,
                        Some(b) => gamma_len > b.gamma.len(),
                    };
                    if better {
                        best = Some(candidate);
                    }
                }
            }
        }
        best
    }

    /// The set of distinct letters occurring in the word.
    pub fn letter_set(&self) -> Alphabet {
        Alphabet::from_letters(self.letters.iter().copied())
    }

    /// Replace every occurrence of letter `from` by the word `to`.
    pub fn substitute_letter(&self, from: Letter, to: &Word) -> Word {
        let mut letters = Vec::new();
        for &l in &self.letters {
            if l == from {
                letters.extend_from_slice(to.letters());
            } else {
                letters.push(l);
            }
        }
        Word { letters }
    }

    /// Erase every occurrence of a letter (used for neutral-letter reasoning).
    pub fn erase_letter(&self, letter: Letter) -> Word {
        Word { letters: self.letters.iter().copied().filter(|&l| l != letter).collect() }
    }
}

/// A decomposition `β a γ a δ` of a word around a repeated letter `a`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepeatedLetterDecomposition {
    /// The repeated letter `a`.
    pub letter: Letter,
    /// The part before the first occurrence.
    pub beta: Word,
    /// The part between the two occurrences (the "gap").
    pub gamma: Word,
    /// The part after the second occurrence.
    pub delta: Word,
}

impl RepeatedLetterDecomposition {
    /// Reassembles the original word `β a γ a δ`.
    pub fn reassemble(&self) -> Word {
        let a = Word::single(self.letter);
        Word::concat_all([&self.beta, &a, &self.gamma, &a, &self.delta])
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "ε")
        } else {
            for l in &self.letters {
                write!(f, "{l}")?;
            }
            Ok(())
        }
    }
}

impl From<&str> for Word {
    fn from(s: &str) -> Self {
        Word::from_str_word(s)
    }
}

impl FromIterator<Letter> for Word {
    fn from_iter<I: IntoIterator<Item = Letter>>(iter: I) -> Self {
        Word::from_letters(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Word {
        Word::from_str_word(s)
    }

    #[test]
    fn basic_construction() {
        assert!(Word::epsilon().is_empty());
        assert_eq!(w("abc").len(), 3);
        assert_eq!(w("abc").first(), Some(Letter('a')));
        assert_eq!(w("abc").last(), Some(Letter('c')));
        assert_eq!(Word::single(Letter('x')), w("x"));
        assert_eq!(Word::epsilon().first(), None);
    }

    #[test]
    fn concat_and_repeat() {
        assert_eq!(w("ab").concat(&w("cd")), w("abcd"));
        assert_eq!(w("ab").repeat(3), w("ababab"));
        assert_eq!(w("ab").repeat(0), Word::epsilon());
        assert_eq!(Word::concat_all([&w("a"), &w(""), &w("bc")]), w("abc"));
    }

    #[test]
    fn mirror() {
        assert_eq!(w("abc").mirror(), w("cba"));
        assert_eq!(Word::epsilon().mirror(), Word::epsilon());
        assert_eq!(w("aba").mirror(), w("aba"));
    }

    #[test]
    fn prefix_suffix_infix() {
        assert!(w("ab").is_prefix_of(&w("abc")));
        assert!(w("ab").is_strict_prefix_of(&w("abc")));
        assert!(!w("abc").is_strict_prefix_of(&w("abc")));
        assert!(w("bc").is_suffix_of(&w("abc")));
        assert!(w("bc").is_strict_suffix_of(&w("abc")));
        assert!(w("b").is_infix_of(&w("abc")));
        assert!(w("b").is_strict_infix_of(&w("abc")));
        assert!(w("abc").is_infix_of(&w("abc")));
        assert!(!w("abc").is_strict_infix_of(&w("abc")));
        assert!(Word::epsilon().is_infix_of(&w("abc")));
        assert!(!w("ac").is_infix_of(&w("abc")));
        assert!(!w("abcd").is_infix_of(&w("abc")));
    }

    #[test]
    fn infix_enumeration() {
        let infixes = w("aba").infixes();
        // ε, a, b, ab, ba, aba (note "a" appears once deduplicated)
        assert_eq!(infixes.len(), 6);
        assert!(infixes.contains(&Word::epsilon()));
        assert!(infixes.contains(&w("aba")));
        let strict = w("aba").strict_infixes();
        assert_eq!(strict.len(), 5);
        assert!(!strict.contains(&w("aba")));
    }

    #[test]
    fn repeated_letters() {
        assert!(!w("abc").has_repeated_letter());
        assert!(w("aba").has_repeated_letter());
        assert!(w("aa").has_repeated_letter());
        assert!(!Word::epsilon().has_repeated_letter());
    }

    #[test]
    fn max_gap_decomposition_picks_largest_gap() {
        // In "abcadea" the two outermost a's are separated by "bcade"? No:
        // occurrences of a at 0, 3, 6. Gap between 0 and 6 is "bcade" (len 5).
        let d = w("abcadea").max_gap_decomposition().unwrap();
        assert_eq!(d.letter, Letter('a'));
        assert_eq!(d.gamma, w("bcade"));
        assert_eq!(d.beta, Word::epsilon());
        assert_eq!(d.delta, Word::epsilon());
        assert_eq!(d.reassemble(), w("abcadea"));

        assert!(w("abc").max_gap_decomposition().is_none());

        let d = w("xaya").max_gap_decomposition().unwrap();
        assert_eq!(d.letter, Letter('a'));
        assert_eq!(d.beta, w("x"));
        assert_eq!(d.gamma, w("y"));
        assert_eq!(d.delta, Word::epsilon());
    }

    #[test]
    fn substitution_and_erasure() {
        assert_eq!(w("axa").substitute_letter(Letter('x'), &w("yz")), w("ayza"));
        assert_eq!(w("axa").erase_letter(Letter('a')), w("x"));
        assert_eq!(w("aaa").erase_letter(Letter('a')), Word::epsilon());
    }

    #[test]
    fn letter_set() {
        let a = w("abcabc").letter_set();
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn display() {
        assert_eq!(w("abc").to_string(), "abc");
        assert_eq!(Word::epsilon().to_string(), "ε");
    }
}
