//! The high-level [`Language`] handle.
//!
//! A `Language` is a regular language over an explicit alphabet, stored
//! canonically as a minimal complete DFA. It exposes every language-level
//! operation that the resilience algorithms and the classifier need:
//! membership, Boolean operations, finiteness and enumeration, mirrors, and
//! the infix-free sublanguage `IF(L)` of Section 2 of the paper.

use crate::alphabet::{Alphabet, Letter};
use crate::dfa::Dfa;
use crate::enfa::Enfa;
use crate::error::{AutomataError, Result};
use crate::regex::Regex;
use crate::word::Word;

/// A regular language over an explicit alphabet, canonically represented by a
/// minimal complete DFA.
#[derive(Debug, Clone)]
pub struct Language {
    alphabet: Alphabet,
    dfa: Dfa,
    /// A textual description (regex or word list) used for display purposes.
    description: String,
}

impl Language {
    /// Parses a regular expression (see [`crate::regex`] for the syntax) into a
    /// language whose alphabet is the set of letters occurring in the expression.
    ///
    /// ```
    /// use rpq_automata::Language;
    /// let l = Language::parse("ab|ad|cd").unwrap();
    /// assert!(l.contains_str("ad").unwrap());
    /// assert!(!l.contains_str("cb").unwrap());
    /// ```
    pub fn parse(pattern: &str) -> Result<Language> {
        let regex = Regex::parse(pattern)?;
        Ok(Self::from_regex_with_description(&regex, pattern.to_string()))
    }

    /// Builds a language from a regex AST.
    pub fn from_regex(regex: &Regex) -> Language {
        Self::from_regex_with_description(regex, regex.to_string())
    }

    fn from_regex_with_description(regex: &Regex, description: String) -> Language {
        let alphabet = regex.letters();
        let dfa = regex.to_enfa().to_nfa().determinize(&alphabet).minimize();
        Language { alphabet, dfa, description }
    }

    /// Builds a language from an ε-NFA. The alphabet is the set of letters on
    /// the automaton's transitions unless a larger one is supplied.
    pub fn from_enfa(enfa: &Enfa, alphabet: Option<Alphabet>) -> Language {
        let alphabet = match alphabet {
            Some(a) => a.union(&enfa.letters()),
            None => enfa.letters(),
        };
        let dfa = enfa.to_nfa().determinize(&alphabet).minimize();
        Language { alphabet, dfa, description: "<from εNFA>".to_string() }
    }

    /// Builds a language directly from a DFA (minimized internally).
    pub fn from_dfa(dfa: Dfa) -> Language {
        let alphabet = dfa.alphabet().clone();
        Language { alphabet, dfa: dfa.minimize(), description: "<from DFA>".to_string() }
    }

    /// Builds the finite language consisting exactly of the given words.
    pub fn from_words<'a, I: IntoIterator<Item = &'a Word>>(words: I) -> Language {
        let words: Vec<&Word> = words.into_iter().collect();
        let description = if words.is_empty() {
            "∅".to_string()
        } else {
            words.iter().map(|w| w.to_string()).collect::<Vec<_>>().join("|")
        };
        let regex = Regex::from_words(words);
        Self::from_regex_with_description(&regex, description)
    }

    /// Builds the finite language from string literals, e.g. `["ab", "cd"]`.
    pub fn from_strs<'a, I: IntoIterator<Item = &'a str>>(words: I) -> Language {
        let words: Vec<Word> = words.into_iter().map(Word::from_str_word).collect();
        Self::from_words(words.iter())
    }

    /// The empty language over `alphabet`.
    pub fn empty(alphabet: Alphabet) -> Language {
        Language {
            dfa: Dfa::empty_language(alphabet.clone()),
            alphabet,
            description: "∅".to_string(),
        }
    }

    /// The universal language `Σ*` over `alphabet`.
    pub fn universal(alphabet: Alphabet) -> Language {
        Language {
            dfa: Dfa::universal_language(alphabet.clone()),
            alphabet,
            description: "Σ*".to_string(),
        }
    }

    /// The alphabet of the language.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The canonical minimal DFA.
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// A human-readable description of the language (regex or word list).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Overrides the display description.
    pub fn with_description(mut self, description: impl Into<String>) -> Language {
        self.description = description.into();
        self
    }

    /// Returns a copy of the language whose alphabet is extended to include
    /// the letters of `alphabet` (the set of words does not change).
    pub fn with_alphabet(&self, alphabet: &Alphabet) -> Language {
        let bigger = self.alphabet.union(alphabet);
        Language {
            dfa: self.dfa.with_alphabet(&bigger).minimize(),
            alphabet: bigger,
            description: self.description.clone(),
        }
    }

    /// Whether the word belongs to the language.
    pub fn contains(&self, word: &Word) -> bool {
        self.dfa.accepts(word)
    }

    /// Whether the word (given as a string, one letter per character) belongs
    /// to the language. Errors if a character is not in the alphabet.
    pub fn contains_str(&self, s: &str) -> Result<bool> {
        for c in s.chars() {
            if !self.alphabet.contains(Letter(c)) {
                return Err(AutomataError::UnknownLetter(c));
            }
        }
        Ok(self.contains(&Word::from_str_word(s)))
    }

    /// Whether the language contains the empty word ε.
    pub fn contains_epsilon(&self) -> bool {
        self.contains(&Word::epsilon())
    }

    /// Whether the language is empty.
    pub fn is_empty(&self) -> bool {
        self.dfa.is_empty_language()
    }

    /// Whether the language is finite.
    pub fn is_finite(&self) -> bool {
        self.dfa.is_finite_language()
    }

    /// The words of a finite language, sorted by length then lexicographically.
    pub fn words(&self) -> Result<Vec<Word>> {
        self.dfa.enumerate_words()
    }

    /// All words of the language of length at most `max_len`.
    pub fn words_up_to_length(&self, max_len: usize) -> Vec<Word> {
        self.dfa.words_up_to_length(max_len)
    }

    /// A shortest word of the language, if any.
    pub fn shortest_word(&self) -> Option<Word> {
        self.dfa.shortest_accepted_word()
    }

    /// The letters that occur in at least one word of the language.
    pub fn used_letters(&self) -> Alphabet {
        self.dfa.used_letters()
    }

    /// The mirror language `L^R` (Proposition 6.3).
    pub fn mirror(&self) -> Language {
        Language {
            alphabet: self.alphabet.clone(),
            dfa: self.dfa.mirror().minimize(),
            description: format!("mirror({})", self.description),
        }
    }

    /// Union of two languages (alphabets are merged).
    pub fn union(&self, other: &Language) -> Language {
        Language {
            alphabet: self.alphabet.union(&other.alphabet),
            dfa: self.dfa.union(&other.dfa).minimize(),
            description: format!("({})|({})", self.description, other.description),
        }
    }

    /// Intersection of two languages (alphabets are merged).
    pub fn intersection(&self, other: &Language) -> Language {
        Language {
            alphabet: self.alphabet.union(&other.alphabet),
            dfa: self.dfa.intersection(&other.dfa).minimize(),
            description: format!("({})∩({})", self.description, other.description),
        }
    }

    /// Set difference `L(self) \ L(other)` (alphabets are merged).
    pub fn difference(&self, other: &Language) -> Language {
        Language {
            alphabet: self.alphabet.union(&other.alphabet),
            dfa: self.dfa.difference(&other.dfa).minimize(),
            description: format!("({})\\({})", self.description, other.description),
        }
    }

    /// Complement with respect to `Σ*` over the language's own alphabet.
    pub fn complement(&self) -> Language {
        Language {
            alphabet: self.alphabet.clone(),
            dfa: self.dfa.complement().minimize(),
            description: format!("¬({})", self.description),
        }
    }

    /// Whether the two languages are equal (as sets of words, over the union
    /// of their alphabets).
    pub fn equals(&self, other: &Language) -> bool {
        self.dfa.equivalent(&other.dfa)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Language) -> bool {
        self.dfa.is_subset_of(&other.dfa)
    }

    /// Concatenation `L(self) · L(other)`.
    pub fn concatenation(&self, other: &Language) -> Language {
        let enfa = concat_enfas(&[enfa_from_dfa(&self.dfa), enfa_from_dfa(&other.dfa)]);
        let alphabet = self.alphabet.union(&other.alphabet);
        let mut l = Language::from_enfa(&enfa, Some(alphabet));
        l.description = format!("({})({})", self.description, other.description);
        l
    }

    /// The **infix-free sublanguage** `IF(L)` (Section 2): the words of `L`
    /// having no strict infix in `L`. The RPQs `Q_L` and `Q_{IF(L)}` are the
    /// same query, so resilience analyses always reduce to `IF(L)`.
    ///
    /// Implemented as `IF(L) = L \ (Σ⁺ L Σ* ∪ Σ* L Σ⁺)`.
    pub fn infix_free(&self) -> Language {
        let sigma_star = Language::universal(self.alphabet.clone());
        let sigma_plus = {
            // Σ⁺ = Σ* \ {ε}
            let eps = Language::from_words([Word::epsilon()].iter());
            sigma_star.difference(&eps).with_alphabet(&self.alphabet)
        };
        let left = sigma_plus.concatenation(self).concatenation(&sigma_star);
        let right = sigma_star.concatenation(self).concatenation(&sigma_plus);
        let strictly_containing = left.union(&right);
        let mut result = self.difference(&strictly_containing);
        result.alphabet = self.alphabet.clone();
        result.dfa = result.dfa.with_alphabet(&self.alphabet).minimize();
        result.description = format!("IF({})", self.description);
        result
    }

    /// Whether the language is infix-free, i.e. `L = IF(L)`.
    pub fn is_infix_free(&self) -> bool {
        self.equals(&self.infix_free())
    }

    /// The **canonical form** of the language: a textual encoding of the
    /// minimized DFA (restricted to used letters, states renumbered by BFS)
    /// such that two languages yield the same string **iff** they contain the
    /// same words — independent of regex spelling, state numbering or ambient
    /// alphabet. See [`Dfa::canonical_form`]. This is the collision-free key
    /// used by prepared-query caches.
    pub fn canonical_form(&self) -> String {
        self.dfa.canonical_form()
    }

    /// A cheap 64-bit **language fingerprint**: the FNV-1a hash of
    /// [`Language::canonical_form`]. Equal languages always collide (e.g.
    /// `a|b` and `b|a`, or `a(b|c)` and `ab|ac`); different languages collide
    /// only with the usual 64-bit hash probability, so use
    /// [`Language::canonical_form`] where collisions must be impossible.
    pub fn language_fingerprint(&self) -> u64 {
        Self::fingerprint_of_canonical_form(&self.canonical_form())
    }

    /// The fingerprint of an already-computed [`Language::canonical_form`]
    /// string — canonicalization is the expensive half, so callers that
    /// already hold the canonical form (e.g. a cache keyed by it) should
    /// hash it directly instead of re-deriving it via
    /// [`Language::language_fingerprint`].
    pub fn fingerprint_of_canonical_form(canonical: &str) -> u64 {
        fnv1a_64(canonical.as_bytes())
    }
}

/// FNV-1a, 64-bit: a stable, dependency-free hash for fingerprints.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl std::fmt::Display for Language {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.description)
    }
}

/// Converts a DFA into an equivalent ε-NFA (trivially, by copying transitions
/// between useful states only).
pub fn enfa_from_dfa(dfa: &Dfa) -> Enfa {
    let mut enfa = Enfa::new();
    enfa.add_states(dfa.num_states());
    enfa.set_initial(dfa.initial_state());
    let useful = dfa.useful_states();
    for s in 0..dfa.num_states() {
        if dfa.is_final(s) {
            enfa.set_final(s);
        }
        for letter in dfa.alphabet().iter() {
            if let Some(t) = dfa.successor(s, letter) {
                // Skip transitions into non-co-accessible sink states to keep
                // the εNFA small; they cannot contribute to any accepted word.
                if useful.contains(&s) && useful.contains(&t) {
                    enfa.add_transition(s, letter, t);
                }
            }
        }
    }
    enfa
}

/// Concatenation of several ε-NFAs, in order.
pub fn concat_enfas(parts: &[Enfa]) -> Enfa {
    let mut out = Enfa::new();
    let start = out.add_state();
    out.set_initial(start);
    let mut prev_finals = vec![start];
    for part in parts {
        let offset = out.add_states(part.num_states());
        for t in part.transitions() {
            match t.label {
                Some(l) => out.add_transition(t.from + offset, l, t.to + offset),
                None => out.add_epsilon_transition(t.from + offset, t.to + offset),
            }
        }
        for &f in &prev_finals {
            for &i in part.initial_states() {
                out.add_epsilon_transition(f, i + offset);
            }
        }
        prev_finals = part.final_states().iter().map(|&s| s + offset).collect();
    }
    for f in prev_finals {
        out.set_final(f);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(s: &str) -> Word {
        Word::from_str_word(s)
    }

    #[test]
    fn parse_and_membership() {
        let l = Language::parse("ax*b|cxd").unwrap();
        assert!(l.contains(&w("ab")));
        assert!(l.contains(&w("axxxb")));
        assert!(l.contains(&w("cxd")));
        assert!(!l.contains(&w("cxxd")));
        assert!(l.contains_str("axb").unwrap());
        assert!(l.contains_str("zz").is_err());
    }

    #[test]
    fn finite_language_enumeration() {
        let l = Language::from_strs(["ab", "ad", "cd"]);
        assert!(l.is_finite());
        let words = l.words().unwrap();
        assert_eq!(words, vec![w("ab"), w("ad"), w("cd")]);
        let inf = Language::parse("ax*b").unwrap();
        assert!(!inf.is_finite());
        assert!(inf.words().is_err());
        assert_eq!(inf.words_up_to_length(3), vec![w("ab"), w("axb")]);
    }

    #[test]
    fn boolean_operations_and_equality() {
        let l1 = Language::parse("ab|cd").unwrap();
        let l2 = Language::parse("cd|ef").unwrap();
        assert!(l1.union(&l2).contains(&w("ef")));
        assert!(l1.intersection(&l2).contains(&w("cd")));
        assert!(!l1.intersection(&l2).contains(&w("ab")));
        assert!(l1.difference(&l2).contains(&w("ab")));
        assert!(!l1.difference(&l2).contains(&w("cd")));
        assert!(Language::parse("a(b|c)").unwrap().equals(&Language::parse("ab|ac").unwrap()));
        assert!(Language::parse("ab").unwrap().is_subset_of(&l1));
    }

    #[test]
    fn concatenation() {
        let l1 = Language::parse("a|ab").unwrap();
        let l2 = Language::parse("c*d").unwrap();
        let c = l1.concatenation(&l2);
        assert!(c.contains(&w("ad")));
        assert!(c.contains(&w("abccd")));
        assert!(!c.contains(&w("ab")));
        assert!(!c.contains(&w("d")));
    }

    #[test]
    fn mirror() {
        let l = Language::parse("abc|xd").unwrap();
        let m = l.mirror();
        assert!(m.contains(&w("cba")));
        assert!(m.contains(&w("dx")));
        assert!(!m.contains(&w("abc")));
        assert!(m.mirror().equals(&l));
    }

    #[test]
    fn infix_free_basic() {
        // IF(abbc|bb) = bb, because bb is a strict infix of abbc (paper §1).
        let l = Language::from_strs(["abbc", "bb"]);
        let if_l = l.infix_free();
        assert!(if_l.contains(&w("bb")));
        assert!(!if_l.contains(&w("abbc")));
        assert!(if_l.equals(&Language::from_strs(["bb"])));
    }

    #[test]
    fn infix_free_of_infinite_language() {
        // IF(L0) for L0 = {a, aa} is {a} (paper example after Theorem 3.13).
        let l0 = Language::from_strs(["a", "aa"]);
        assert!(l0.infix_free().equals(&Language::from_strs(["a"])));

        // IF(e*be*ce*|e*de*fe*) = be*c | de*f (paper, after Lemma 5.8).
        let l1 = Language::parse("e*be*ce*|e*de*fe*").unwrap();
        let expected = Language::parse("be*c|de*f").unwrap();
        assert!(l1.infix_free().equals(&expected.with_alphabet(l1.alphabet())));
    }

    #[test]
    fn infix_free_idempotent_and_detection() {
        let l = Language::parse("ab|bc").unwrap();
        assert!(l.is_infix_free());
        assert!(l.infix_free().equals(&l));
        let l2 = Language::from_strs(["a", "aa"]);
        assert!(!l2.is_infix_free());
        assert!(l2.infix_free().is_infix_free());
    }

    #[test]
    fn epsilon_in_language() {
        assert!(Language::parse("a*").unwrap().contains_epsilon());
        assert!(!Language::parse("a+").unwrap().contains_epsilon());
        // If ε ∈ L then IF(L) = {ε}.
        let l = Language::parse("a*").unwrap();
        assert!(l.infix_free().equals(&Language::from_words([Word::epsilon()].iter())));
    }

    #[test]
    fn empty_and_universal_language() {
        let alpha = Alphabet::from_chars("ab");
        let e = Language::empty(alpha.clone());
        assert!(e.is_empty());
        assert!(e.is_finite());
        let u = Language::universal(alpha);
        assert!(!u.is_empty());
        assert!(!u.is_finite());
        assert!(u.contains(&w("abab")));
        assert!(e.is_subset_of(&u));
    }

    #[test]
    fn with_alphabet_extends_without_changing_words() {
        let l = Language::parse("ab").unwrap();
        let bigger = l.with_alphabet(&Alphabet::from_chars("abcz"));
        assert!(bigger.contains(&w("ab")));
        assert!(!bigger.contains(&w("az")));
        assert_eq!(bigger.alphabet().len(), 4);
        assert!(bigger.equals(&l));
    }

    #[test]
    fn used_letters() {
        let l = Language::parse("ab|cd").unwrap().with_alphabet(&Alphabet::from_chars("abcdez"));
        let used = l.used_letters();
        assert_eq!(used.len(), 4);
        assert!(!used.contains(Letter('z')));
    }

    #[test]
    fn from_enfa_and_from_dfa() {
        let enfa = Regex::parse("ab|ad|cd").unwrap().to_enfa();
        let l = Language::from_enfa(&enfa, None);
        assert!(l.contains(&w("ad")));
        let l2 = Language::from_dfa(l.dfa().clone());
        assert!(l2.equals(&l));
    }

    #[test]
    fn language_fingerprint_is_spelling_independent() {
        // Textually different but equivalent regexes collide.
        for (left, right) in
            [("a|b", "b|a"), ("a(b|c)", "ab|ac"), ("ax*b", "a(x)*b"), ("ab|cd|ab", "cd|ab")]
        {
            let l = Language::parse(left).unwrap();
            let r = Language::parse(right).unwrap();
            assert_eq!(l.canonical_form(), r.canonical_form(), "{left} vs {right}");
            assert_eq!(l.language_fingerprint(), r.language_fingerprint(), "{left} vs {right}");
        }
    }

    #[test]
    fn language_fingerprint_separates_different_languages() {
        for (left, right) in [("a", "ab"), ("a", "b"), ("ab|cd", "ab"), ("ax*b", "axb"), ("ε", "a")]
        {
            let l = Language::parse(left).unwrap();
            let r = Language::parse(right).unwrap();
            assert_ne!(l.canonical_form(), r.canonical_form(), "{left} vs {right}");
            assert_ne!(l.language_fingerprint(), r.language_fingerprint(), "{left} vs {right}");
        }
    }

    #[test]
    fn language_fingerprint_ignores_the_ambient_alphabet() {
        // Extending the alphabet does not change the set of words, so the
        // canonical form (hence the fingerprint) must not change either.
        let l = Language::parse("ab").unwrap();
        let extended = l.with_alphabet(&Alphabet::from_chars("abcdxyz"));
        assert_eq!(l.canonical_form(), extended.canonical_form());
        assert_eq!(l.language_fingerprint(), extended.language_fingerprint());
        // The empty and ε languages are distinguished even with no used letters.
        let empty = Language::empty(Alphabet::from_chars("ab"));
        let eps = Language::from_words([Word::epsilon()].iter());
        assert_ne!(empty.canonical_form(), eps.canonical_form());
    }

    #[test]
    fn description_display() {
        let l = Language::parse("ab|cd").unwrap();
        assert_eq!(l.to_string(), "ab|cd");
        let l = Language::from_strs(["aa"]);
        assert_eq!(l.to_string(), "aa");
        let renamed = l.with_description("the aa language");
        assert_eq!(renamed.to_string(), "the aa language");
    }
}
