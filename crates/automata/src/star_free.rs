//! Star-free (aperiodic) languages, used by Lemma 5.6 of the paper.
//!
//! A regular language is *star-free* iff its syntactic monoid is aperiodic
//! (counter-free automata, McNaughton–Papert). The paper uses the equivalent
//! "bounded exponent" definition: there is `k > 0` such that for all
//! `ρ, σ, τ` and all `m ≥ k`, `ρσ^k τ ∈ L ⟺ ρσ^m τ ∈ L`.
//!
//! Lemma 5.6 shows that infix-free **non**-star-free languages are always
//! four-legged, hence NP-hard for resilience. The classifier primarily relies
//! on the four-legged test directly; this module provides the star-freeness
//! test for completeness and for cross-checking Lemma 5.6.
//!
//! Deciding aperiodicity is PSPACE-complete in general, so the implementation
//! enumerates the transition monoid of the minimal DFA under a configurable
//! budget and reports [`AutomataError::BudgetExceeded`] when the monoid is too
//! large. The automata arising from the paper's example languages are tiny, so
//! the default budget is never hit in practice.

use crate::error::{AutomataError, Result};
use crate::language::Language;
use std::collections::BTreeSet;

/// Default maximum number of transition-monoid elements explored.
pub const DEFAULT_MONOID_BUDGET: usize = 100_000;

/// A transformation of the state set, represented as the image of each state.
type Transformation = Vec<usize>;

fn compose(first: &Transformation, then: &Transformation) -> Transformation {
    first.iter().map(|&s| then[s]).collect()
}

/// Computes the transition monoid of the language's minimal DFA (the set of
/// state transformations induced by words), up to `budget` elements.
fn transition_monoid(language: &Language, budget: usize) -> Result<Vec<Transformation>> {
    let dfa = language.dfa();
    let n = dfa.num_states();
    let generators: Vec<Transformation> = dfa
        .alphabet()
        .iter()
        .map(|a| (0..n).map(|s| dfa.successor(s, a).expect("complete DFA")).collect())
        .collect();
    let mut seen: BTreeSet<Transformation> = BTreeSet::new();
    let mut queue: Vec<Transformation> = Vec::new();
    let identity: Transformation = (0..n).collect();
    seen.insert(identity.clone());
    queue.push(identity);
    let mut idx = 0;
    while idx < queue.len() {
        let current = queue[idx].clone();
        idx += 1;
        for g in &generators {
            let next = compose(&current, g);
            if seen.insert(next.clone()) {
                if seen.len() > budget {
                    return Err(AutomataError::BudgetExceeded {
                        analysis: "transition monoid enumeration",
                        limit: budget,
                    });
                }
                queue.push(next);
            }
        }
    }
    Ok(queue)
}

/// Whether a single transformation is aperiodic: its powers eventually become
/// constant (`m^i = m^{i+1}` for some `i`), rather than entering a cycle of
/// length ≥ 2.
fn transformation_is_aperiodic(m: &Transformation) -> bool {
    let mut seen: Vec<Transformation> = vec![m.clone()];
    let mut current = m.clone();
    loop {
        let next = compose(&current, m);
        if next == current {
            return true;
        }
        if seen.contains(&next) {
            // Entered a cycle that is not a fixed point.
            return false;
        }
        seen.push(next.clone());
        current = next;
    }
}

/// Tests star-freeness with an explicit budget on the transition-monoid size.
pub fn is_star_free_with_budget(language: &Language, budget: usize) -> Result<bool> {
    let monoid = transition_monoid(language, budget)?;
    Ok(monoid.iter().all(transformation_is_aperiodic))
}

/// Whether the language is star-free (aperiodic), using the default budget.
///
/// ```
/// use rpq_automata::{star_free, Language};
/// assert!(star_free::is_star_free(&Language::parse("ax*b").unwrap()).unwrap());
/// assert!(!star_free::is_star_free(&Language::parse("b(aa)*d").unwrap()).unwrap());
/// ```
pub fn is_star_free(language: &Language) -> Result<bool> {
    is_star_free_with_budget(language, DEFAULT_MONOID_BUDGET)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::four_legged::is_four_legged;

    fn lang(pattern: &str) -> Language {
        Language::parse(pattern).unwrap()
    }

    #[test]
    fn finite_languages_are_star_free() {
        for pattern in ["aa", "ab|cd", "abc|bcd", "axb|cxd", "abcd|be|ef"] {
            assert!(is_star_free(&lang(pattern)).unwrap(), "{pattern}");
        }
    }

    #[test]
    fn star_free_infinite_languages() {
        // Languages with stars can still be star-free (aperiodic).
        for pattern in ["ax*b", "a*", "ax*b|cxd", "e*be*ce*|e*de*fe*", "(a|b)*abb"] {
            assert!(is_star_free(&lang(pattern)).unwrap(), "{pattern}");
        }
    }

    #[test]
    fn non_star_free_languages() {
        for pattern in ["b(aa)*d", "(aa)*", "a(bb)*", "(aa)*b"] {
            assert!(!is_star_free(&lang(pattern)).unwrap(), "{pattern}");
        }
    }

    #[test]
    fn lemma_5_6_non_star_free_infix_free_is_four_legged() {
        for pattern in ["b(aa)*d", "b(aaa)*d", "c(ab)*d"] {
            let l = lang(pattern);
            if !l.is_infix_free() {
                continue;
            }
            if !is_star_free(&l).unwrap() {
                assert!(
                    is_four_legged(&l),
                    "{pattern}: non-star-free infix-free must be four-legged"
                );
            }
        }
    }

    #[test]
    fn budget_is_respected() {
        let l = lang("b(aa)*d");
        let err = is_star_free_with_budget(&l, 1).unwrap_err();
        assert!(matches!(err, AutomataError::BudgetExceeded { .. }));
    }

    #[test]
    fn trivial_languages() {
        assert!(is_star_free(&lang("ε")).unwrap());
        assert!(is_star_free(&lang("∅")).unwrap());
        assert!(is_star_free(&lang("a")).unwrap());
    }

    #[test]
    fn star_freeness_closed_under_infix_free_sublanguage() {
        // Claim B.1 of the paper: if L is star-free then IF(L) is star-free.
        for pattern in ["ax*b", "a*ba*", "ab|a", "e*be*ce*"] {
            let l = lang(pattern);
            if is_star_free(&l).unwrap() {
                assert!(is_star_free(&l.infix_free()).unwrap(), "IF({pattern})");
            }
        }
    }
}
