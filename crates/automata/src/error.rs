//! Error types for the automata crate.

use std::fmt;

/// Errors produced by parsing and language-analysis routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutomataError {
    /// A regular expression could not be parsed.
    RegexParse {
        /// Byte position of the offending character in the input.
        position: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A letter outside the expected alphabet was encountered.
    UnknownLetter(char),
    /// An operation requiring a finite language was applied to an infinite one.
    InfiniteLanguage,
    /// An operation requiring a non-empty language was applied to the empty one.
    EmptyLanguage,
    /// An analysis exceeded its configured resource budget (e.g. the transition
    /// monoid grew too large during an aperiodicity test).
    BudgetExceeded {
        /// Which analysis hit the budget.
        analysis: &'static str,
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// The input automaton or language does not satisfy a precondition of the
    /// requested construction (e.g. building an RO-εNFA from a non-local language).
    Precondition(String),
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::RegexParse { position, message } => {
                write!(f, "regex parse error at position {position}: {message}")
            }
            AutomataError::UnknownLetter(c) => write!(f, "unknown letter {c:?}"),
            AutomataError::InfiniteLanguage => {
                write!(f, "operation requires a finite language but the language is infinite")
            }
            AutomataError::EmptyLanguage => {
                write!(f, "operation requires a non-empty language but the language is empty")
            }
            AutomataError::BudgetExceeded { analysis, limit } => {
                write!(f, "{analysis} exceeded its resource budget of {limit}")
            }
            AutomataError::Precondition(msg) => write!(f, "precondition violated: {msg}"),
        }
    }
}

impl std::error::Error for AutomataError {}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AutomataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = AutomataError::RegexParse { position: 3, message: "unexpected ')'".into() };
        assert!(e.to_string().contains("position 3"));
        let e = AutomataError::UnknownLetter('Z');
        assert!(e.to_string().contains('Z'));
        let e = AutomataError::BudgetExceeded { analysis: "aperiodicity", limit: 10 };
        assert!(e.to_string().contains("aperiodicity"));
        let e = AutomataError::Precondition("x".into());
        assert!(e.to_string().contains('x'));
        assert!(AutomataError::InfiniteLanguage.to_string().contains("infinite"));
        assert!(AutomataError::EmptyLanguage.to_string().contains("empty"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&AutomataError::UnknownLetter('a'));
    }
}
