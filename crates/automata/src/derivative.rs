//! Brzozowski derivatives of regular expressions.
//!
//! The derivative of a language `L` by a letter `a` is
//! `a⁻¹L = { α : aα ∈ L }`. Brzozowski showed that derivatives of a regular
//! expression can be computed syntactically and that repeatedly deriving
//! yields finitely many expressions up to similarity, which gives:
//!
//! * a membership test that never builds an automaton
//!   ([`accepts`]) — used as an *independent cross-check* of the ε-NFA /
//!   DFA pipeline in property tests;
//! * a direct DFA construction ([`derivative_dfa`]) whose states are
//!   derivative expressions, cross-checked for language equality against the
//!   Thompson-construction DFA.
//!
//! Left quotients by letters are exactly what the paper's analyses manipulate
//! (left/right contexts of a letter in the four-legged test, residuals of
//! words in the locality proofs), so this module also doubles as a second
//! implementation path for those building blocks.

use crate::alphabet::{Alphabet, Letter};
use crate::dfa::Dfa;
use crate::regex::Regex;
use crate::word::Word;
use std::collections::BTreeMap;

/// Whether the language of the expression contains the empty word (the
/// "nullability" predicate `ν` of Brzozowski's construction).
pub fn nullable(regex: &Regex) -> bool {
    match regex {
        Regex::Empty | Regex::Letter(_) => false,
        Regex::Epsilon | Regex::Star(_) | Regex::Optional(_) => true,
        Regex::Plus(inner) => nullable(inner),
        Regex::Concat(parts) => parts.iter().all(nullable),
        Regex::Union(parts) => parts.iter().any(nullable),
    }
}

/// The Brzozowski derivative `a⁻¹ L(r)`, returned in a lightly normalized form
/// (see [`simplify`]) so that repeated derivation reaches a fixpoint quickly.
pub fn derivative(regex: &Regex, letter: Letter) -> Regex {
    let raw = match regex {
        Regex::Empty | Regex::Epsilon => Regex::Empty,
        Regex::Letter(l) => {
            if *l == letter {
                Regex::Epsilon
            } else {
                Regex::Empty
            }
        }
        Regex::Union(parts) => Regex::Union(parts.iter().map(|p| derivative(p, letter)).collect()),
        Regex::Concat(parts) => {
            // d(r1 r2 … rn) = d(r1) r2…rn  ∪  [ν(r1)] d(r2 … rn)  (recursively).
            if parts.is_empty() {
                Regex::Empty
            } else {
                let head = &parts[0];
                let tail: Vec<Regex> = parts[1..].to_vec();
                let mut with_head: Vec<Regex> = vec![derivative(head, letter)];
                with_head.extend(tail.iter().cloned());
                let first = Regex::Concat(with_head);
                if nullable(head) {
                    let rest =
                        if tail.is_empty() { Regex::Epsilon } else { Regex::Concat(tail.clone()) };
                    Regex::Union(vec![first, derivative(&rest, letter)])
                } else {
                    first
                }
            }
        }
        Regex::Star(inner) => {
            Regex::Concat(vec![derivative(inner, letter), Regex::Star(inner.clone())])
        }
        Regex::Plus(inner) => {
            // r+ = r r*, so d(r+) = d(r) r*.
            Regex::Concat(vec![derivative(inner, letter), Regex::Star(inner.clone())])
        }
        Regex::Optional(inner) => derivative(inner, letter),
    };
    simplify(raw)
}

/// Light syntactic normalization (the "similarity" rules of Brzozowski):
/// `∅ | r = r`, `∅ · r = ∅`, `ε · r = r`, flattening of nested unions and
/// concatenations, deduplication of union members. This is enough to make the
/// set of iterated derivatives finite in practice for the small expressions
/// used throughout the paper.
pub fn simplify(regex: Regex) -> Regex {
    match regex {
        Regex::Union(parts) => {
            let mut flat: Vec<Regex> = Vec::new();
            for part in parts {
                match simplify(part) {
                    Regex::Empty => {}
                    Regex::Union(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            flat.sort_by_key(|r| format!("{r:?}"));
            flat.dedup();
            match flat.len() {
                0 => Regex::Empty,
                1 => flat.pop().expect("length checked"),
                _ => Regex::Union(flat),
            }
        }
        Regex::Concat(parts) => {
            let mut flat: Vec<Regex> = Vec::new();
            for part in parts {
                match simplify(part) {
                    Regex::Empty => return Regex::Empty,
                    Regex::Epsilon => {}
                    Regex::Concat(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            match flat.len() {
                0 => Regex::Epsilon,
                1 => flat.pop().expect("length checked"),
                _ => Regex::Concat(flat),
            }
        }
        Regex::Star(inner) => match simplify(*inner) {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(nested) => Regex::Star(nested),
            other => Regex::Star(Box::new(other)),
        },
        Regex::Plus(inner) => match simplify(*inner) {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            other => Regex::Plus(Box::new(other)),
        },
        Regex::Optional(inner) => match simplify(*inner) {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            other => Regex::Optional(Box::new(other)),
        },
        leaf => leaf,
    }
}

/// The derivative of a regular expression by a whole word.
pub fn word_derivative(regex: &Regex, word: &Word) -> Regex {
    let mut current = simplify(regex.clone());
    for letter in word.iter() {
        current = derivative(&current, letter);
        if current == Regex::Empty {
            break;
        }
    }
    current
}

/// Membership via derivatives: `α ∈ L(r)` iff the derivative of `r` by `α` is
/// nullable. This never constructs an automaton.
pub fn accepts(regex: &Regex, word: &Word) -> bool {
    nullable(&word_derivative(regex, word))
}

/// Builds a DFA whose states are iterated derivatives of the expression
/// (Brzozowski's automaton), over the given alphabet (defaults to the letters
/// of the expression). Panics if more than `budget` distinct derivative
/// expressions appear, which cannot happen with [`simplify`]'s rules on the
/// small expressions used in this workspace.
pub fn derivative_dfa(regex: &Regex, alphabet: Option<Alphabet>, budget: usize) -> Dfa {
    let alphabet = alphabet.unwrap_or_else(|| regex.letters());
    let start = simplify(regex.clone());
    let mut index: BTreeMap<String, usize> = BTreeMap::new();
    let mut states: Vec<Regex> = Vec::new();
    let key = |r: &Regex| format!("{r:?}");
    index.insert(key(&start), 0);
    states.push(start);
    let mut transitions: Vec<Vec<usize>> = Vec::new();
    let mut i = 0;
    while i < states.len() {
        assert!(states.len() <= budget, "derivative construction exceeded the budget");
        let mut row = Vec::with_capacity(alphabet.len());
        for letter in alphabet.iter() {
            let next = derivative(&states[i], letter);
            let k = key(&next);
            let target = *index.entry(k).or_insert_with(|| {
                states.push(next.clone());
                states.len() - 1
            });
            row.push(target);
        }
        transitions.push(row);
        i += 1;
    }
    let finals: Vec<bool> = states.iter().map(nullable).collect();
    Dfa::from_parts(alphabet, 0, finals, transitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::Language;

    const PATTERNS: &[&str] = &[
        "ax*b",
        "ab|ad|cd",
        "aa",
        "axb|cxd",
        "b(aa)*d",
        "abc|be",
        "a(b|d)*x",
        "ab*c|ba",
        "e*(a|c)e*(a|d)e*",
    ];

    #[test]
    fn derivative_membership_agrees_with_the_dfa() {
        for pattern in PATTERNS {
            let regex = Regex::parse(pattern).unwrap();
            let language = Language::parse(pattern).unwrap();
            // Check every word of length ≤ 5 over the expression's letters.
            let alphabet = regex.letters();
            let mut words = vec![Word::epsilon()];
            for _ in 0..5 {
                let mut next = Vec::new();
                for w in &words {
                    for l in alphabet.iter() {
                        next.push(w.concat(&Word::single(l)));
                    }
                }
                words.extend(next.clone());
                words = {
                    let mut deduped = words;
                    deduped.sort();
                    deduped.dedup();
                    deduped
                };
            }
            for word in &words {
                assert_eq!(
                    accepts(&regex, word),
                    language.contains(word),
                    "{pattern} disagrees on {word}"
                );
            }
        }
    }

    #[test]
    fn derivative_dfa_is_language_equivalent() {
        for pattern in PATTERNS {
            let regex = Regex::parse(pattern).unwrap();
            let language = Language::parse(pattern).unwrap();
            let dfa = derivative_dfa(&regex, Some(language.alphabet().clone()), 10_000);
            assert!(
                dfa.equivalent(&language.dfa().with_alphabet(language.alphabet())),
                "{pattern}: derivative DFA differs from the Thompson-construction DFA"
            );
        }
    }

    #[test]
    fn nullability_and_simplification_basics() {
        assert!(nullable(&Regex::parse("a*").unwrap()));
        assert!(!nullable(&Regex::parse("a").unwrap()));
        assert!(nullable(&Regex::parse("ab|x*").unwrap()));
        // ∅-absorption and ε-elimination.
        let r = simplify(Regex::Concat(vec![Regex::Epsilon, Regex::Letter(Letter('a'))]));
        assert_eq!(r, Regex::Letter(Letter('a')));
        let r = simplify(Regex::Union(vec![Regex::Empty, Regex::Letter(Letter('a'))]));
        assert_eq!(r, Regex::Letter(Letter('a')));
        let r = simplify(Regex::Concat(vec![Regex::Empty, Regex::Letter(Letter('a'))]));
        assert_eq!(r, Regex::Empty);
    }

    #[test]
    fn word_derivatives_are_left_quotients() {
        // For L = axb|cxd, the derivative by "ax" is {b}.
        let regex = Regex::parse("axb|cxd").unwrap();
        let d = word_derivative(&regex, &Word::from_str_word("ax"));
        assert!(accepts(&d, &Word::from_str_word("b")));
        assert!(!accepts(&d, &Word::from_str_word("d")));
        // Deriving by a letter outside the language gives ∅.
        assert_eq!(word_derivative(&regex, &Word::from_str_word("x")), Regex::Empty);
    }
}
