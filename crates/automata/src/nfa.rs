//! Nondeterministic finite automata without ε-transitions.
//!
//! NFAs mainly serve as the intermediate step between [`crate::enfa::Enfa`]
//! (produced by the Thompson construction) and [`crate::dfa::Dfa`] (produced by
//! the subset construction), on which most language analyses run.

use crate::alphabet::{Alphabet, Letter};
use crate::dfa::Dfa;
use crate::word::Word;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A nondeterministic finite automaton (no ε-transitions).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Nfa {
    num_states: usize,
    initial: BTreeSet<usize>,
    finals: BTreeSet<usize>,
    /// transitions[state] maps a letter to the set of successor states.
    transitions: Vec<BTreeMap<Letter, BTreeSet<usize>>>,
}

impl Nfa {
    /// Creates an NFA with `n` states and no transitions.
    pub fn with_states(n: usize) -> Self {
        Nfa {
            num_states: n,
            initial: BTreeSet::new(),
            finals: BTreeSet::new(),
            transitions: vec![BTreeMap::new(); n],
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Marks a state as initial.
    pub fn set_initial(&mut self, state: usize) {
        assert!(state < self.num_states);
        self.initial.insert(state);
    }

    /// Marks a state as final.
    pub fn set_final(&mut self, state: usize) {
        assert!(state < self.num_states);
        self.finals.insert(state);
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, from: usize, letter: Letter, to: usize) {
        assert!(from < self.num_states && to < self.num_states);
        self.transitions[from].entry(letter).or_default().insert(to);
    }

    /// Initial states.
    pub fn initial_states(&self) -> &BTreeSet<usize> {
        &self.initial
    }

    /// Final states.
    pub fn final_states(&self) -> &BTreeSet<usize> {
        &self.finals
    }

    /// Successors of a state by a letter.
    pub fn successors(&self, state: usize, letter: Letter) -> impl Iterator<Item = usize> + '_ {
        self.transitions[state].get(&letter).into_iter().flat_map(|s| s.iter().copied())
    }

    /// The set of letters appearing on transitions.
    pub fn letters(&self) -> Alphabet {
        Alphabet::from_letters(self.transitions.iter().flat_map(|m| m.keys().copied()))
    }

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &Word) -> bool {
        let mut current = self.initial.clone();
        for letter in word.iter() {
            let mut next = BTreeSet::new();
            for &s in &current {
                if let Some(succ) = self.transitions[s].get(&letter) {
                    next.extend(succ.iter().copied());
                }
            }
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|s| self.finals.contains(s))
    }

    /// Subset construction: builds a complete DFA over `alphabet` recognizing
    /// the same language restricted to words over `alphabet`.
    ///
    /// The provided alphabet must contain every letter used by the NFA
    /// (letters outside it would be silently dropped), which the caller
    /// typically guarantees by passing `self.letters()` or a superset.
    pub fn determinize(&self, alphabet: &Alphabet) -> Dfa {
        let mut subset_index: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::new();
        let mut subsets: Vec<BTreeSet<usize>> = Vec::new();
        let mut transitions: Vec<Vec<usize>> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();

        let start_set = self.initial.clone();
        subset_index.insert(start_set.clone(), 0);
        subsets.push(start_set);
        transitions.push(vec![usize::MAX; alphabet.len()]);
        queue.push_back(0);

        while let Some(idx) = queue.pop_front() {
            let current = subsets[idx].clone();
            for (li, letter) in alphabet.iter().enumerate() {
                let mut next = BTreeSet::new();
                for &s in &current {
                    if let Some(succ) = self.transitions[s].get(&letter) {
                        next.extend(succ.iter().copied());
                    }
                }
                let next_idx = match subset_index.get(&next) {
                    Some(&i) => i,
                    None => {
                        let i = subsets.len();
                        subset_index.insert(next.clone(), i);
                        subsets.push(next);
                        transitions.push(vec![usize::MAX; alphabet.len()]);
                        queue.push_back(i);
                        i
                    }
                };
                transitions[idx][li] = next_idx;
            }
        }

        let finals: Vec<bool> =
            subsets.iter().map(|set| set.iter().any(|s| self.finals.contains(s))).collect();

        Dfa::from_parts(alphabet.clone(), 0, finals, transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn w(s: &str) -> Word {
        Word::from_str_word(s)
    }

    #[test]
    fn accepts_matches_enfa() {
        for pattern in ["ax*b", "ab|ad|cd", "b(aa)*d", "(a|b)*c"] {
            let enfa = Regex::parse(pattern).unwrap().to_enfa();
            let nfa = enfa.to_nfa();
            for word in
                ["", "a", "ab", "ad", "cd", "axb", "axxb", "bd", "baad", "c", "abc", "aabbc"]
            {
                assert_eq!(enfa.accepts(&w(word)), nfa.accepts(&w(word)), "{pattern} on {word}");
            }
        }
    }

    #[test]
    fn determinization_preserves_language() {
        for pattern in ["ax*b", "ab|ad|cd", "(a|b)*abb", "a(b|c)*d"] {
            let enfa = Regex::parse(pattern).unwrap().to_enfa();
            let nfa = enfa.to_nfa();
            let alphabet = nfa.letters();
            let dfa = nfa.determinize(&alphabet);
            for word in [
                "", "a", "ab", "ad", "cd", "axb", "axxb", "abb", "babb", "aabb", "ad", "abcd",
                "acbd", "abd",
            ] {
                let word = w(word);
                // Only compare on words over the DFA's alphabet.
                if word.iter().all(|l| alphabet.contains(l)) {
                    assert_eq!(nfa.accepts(&word), dfa.accepts(&word), "{pattern} on {word}");
                }
            }
        }
    }

    #[test]
    fn manual_nfa() {
        // Language: words over {a,b} ending in "ab".
        let mut nfa = Nfa::with_states(3);
        nfa.set_initial(0);
        nfa.set_final(2);
        nfa.add_transition(0, Letter('a'), 0);
        nfa.add_transition(0, Letter('b'), 0);
        nfa.add_transition(0, Letter('a'), 1);
        nfa.add_transition(1, Letter('b'), 2);
        assert!(nfa.accepts(&w("ab")));
        assert!(nfa.accepts(&w("aab")));
        assert!(nfa.accepts(&w("bbab")));
        assert!(!nfa.accepts(&w("ba")));
        assert!(!nfa.accepts(&w("")));
        let dfa = nfa.determinize(&nfa.letters());
        assert!(dfa.accepts(&w("bbab")));
        assert!(!dfa.accepts(&w("aba")));
    }

    #[test]
    fn successors_iteration() {
        let mut nfa = Nfa::with_states(2);
        nfa.add_transition(0, Letter('a'), 1);
        nfa.add_transition(0, Letter('a'), 0);
        let succ: Vec<usize> = nfa.successors(0, Letter('a')).collect();
        assert_eq!(succ, vec![0, 1]);
        assert_eq!(nfa.successors(1, Letter('a')).count(), 0);
    }
}
