//! Read-once ε-NFAs (Definition 3.15 of the paper).
//!
//! An RO-εNFA is an ε-NFA with **at most one transition per letter**. By
//! Lemma 3.17 these automata recognize exactly the local languages, and their
//! read-once property is what makes the product construction of Theorem 3.13
//! correct: each database fact corresponds to exactly one finite-capacity edge
//! of the flow network.

use crate::alphabet::Letter;
use crate::enfa::Enfa;
use crate::error::{AutomataError, Result};
use crate::language::Language;
use crate::local::{is_local, LocalProfile};
use crate::word::Word;
use std::collections::BTreeMap;

/// Dense-table sentinel: "no transition for this ASCII letter".
const NO_TRANSITION: u32 = u32::MAX;

/// A read-once ε-NFA: an ε-NFA with at most one letter transition per letter.
#[derive(Debug, Clone)]
pub struct RoEnfa {
    enfa: Enfa,
    /// For every letter, its unique transition `(source, target)`.
    letter_transitions: BTreeMap<Letter, (usize, usize)>,
    /// Dense fast path for [`RoEnfa::letter_transition`]: ASCII letters index
    /// straight into this table instead of walking the `BTreeMap`. The lookup
    /// sits on the per-fact hot loop of the Theorem 3.13 product build, where
    /// it runs twice per fact per solve. `(NO_TRANSITION, _)` = absent;
    /// letters whose state ids overflow `u32` (never in practice) stay absent
    /// here and fall back to the map.
    ascii_transitions: Box<[(u32, u32); 128]>,
}

impl RoEnfa {
    /// Wraps an ε-NFA, checking the read-once property.
    pub fn from_enfa_checked(enfa: Enfa) -> Result<RoEnfa> {
        let mut letter_transitions = BTreeMap::new();
        for t in enfa.transitions() {
            if let Some(letter) = t.label {
                if letter_transitions.insert(letter, (t.from, t.to)).is_some() {
                    return Err(AutomataError::Precondition(format!(
                        "automaton has two transitions labeled by letter {letter}"
                    )));
                }
            }
        }
        let mut ascii_transitions = Box::new([(NO_TRANSITION, NO_TRANSITION); 128]);
        for (&letter, &(from, to)) in &letter_transitions {
            if let (Ok(from), Ok(to)) = (u32::try_from(from), u32::try_from(to)) {
                if letter.0.is_ascii() && from != NO_TRANSITION {
                    ascii_transitions[letter.0 as usize] = (from, to);
                }
            }
        }
        Ok(RoEnfa { enfa, letter_transitions, ascii_transitions })
    }

    /// Builds an RO-εNFA for a **local** language (Lemma 3.17), directly from
    /// its local profile `(Σ_start, Σ_end, Π)`:
    ///
    /// * a state `q₀` (initial; final iff ε ∈ L),
    /// * for each letter `a`, two states `s'_a` (the entry of the unique
    ///   `a`-transition) and `q_a` (its exit; final iff `a ∈ Σ_end`),
    /// * ε-transitions `q₀ → s'_a` for `a ∈ Σ_start` and `q_a → s'_b` for
    ///   `(a, b) ∈ Π`.
    ///
    /// Errors with [`AutomataError::Precondition`] if the language is not local.
    pub fn for_local_language(language: &Language) -> Result<RoEnfa> {
        if !is_local(language) {
            return Err(AutomataError::Precondition(format!(
                "language {language} is not local, no RO-εNFA recognizes it"
            )));
        }
        let profile = LocalProfile::of(language);
        let mut enfa = Enfa::new();
        let q0 = enfa.add_state();
        enfa.set_initial(q0);
        if profile.contains_epsilon {
            enfa.set_final(q0);
        }
        let mut entry = BTreeMap::new(); // letter -> s'_a
        let mut exit = BTreeMap::new(); // letter -> q_a
        for a in profile.alphabet.iter() {
            let s_prime = enfa.add_state();
            let q_a = enfa.add_state();
            enfa.add_transition(s_prime, a, q_a);
            if profile.end_letters.contains(a) {
                enfa.set_final(q_a);
            }
            entry.insert(a, s_prime);
            exit.insert(a, q_a);
        }
        for a in profile.start_letters.iter() {
            enfa.add_epsilon_transition(q0, entry[&a]);
        }
        for &(a, b) in &profile.digrams {
            enfa.add_epsilon_transition(exit[&a], entry[&b]);
        }
        RoEnfa::from_enfa_checked(enfa)
    }

    /// Builds an RO-εNFA from an arbitrary ε-NFA that recognizes a local
    /// language (the combined-complexity entry point of Lemma 3.17).
    pub fn from_enfa_of_local_language(enfa: &Enfa) -> Result<RoEnfa> {
        let language = Language::from_enfa(enfa, None);
        Self::for_local_language(&language)
    }

    /// The underlying ε-NFA.
    pub fn enfa(&self) -> &Enfa {
        &self.enfa
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.enfa.num_states()
    }

    /// The size `|A|` (states + transitions).
    pub fn size(&self) -> usize {
        self.enfa.size()
    }

    /// The unique transition for `letter`, if any, as `(source, target)`.
    #[inline]
    pub fn letter_transition(&self, letter: Letter) -> Option<(usize, usize)> {
        if letter.0.is_ascii() {
            let (from, to) = self.ascii_transitions[letter.0 as usize];
            if from != NO_TRANSITION {
                return Some((from as usize, to as usize));
            }
            // Absent — or unrepresentable (u32 overflow): ask the map.
        }
        self.letter_transitions.get(&letter).copied()
    }

    /// Iterator over all letter transitions as `(letter, source, target)`.
    pub fn letter_transitions(&self) -> impl Iterator<Item = (Letter, usize, usize)> + '_ {
        self.letter_transitions.iter().map(|(&l, &(s, t))| (l, s, t))
    }

    /// Iterator over ε-transitions as `(source, target)`.
    pub fn epsilon_transitions(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.enfa.transitions().filter(|t| t.label.is_none()).map(|t| (t.from, t.to))
    }

    /// Initial states.
    pub fn initial_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.enfa.initial_states().iter().copied()
    }

    /// Final states.
    pub fn final_states(&self) -> impl Iterator<Item = usize> + '_ {
        self.enfa.final_states().iter().copied()
    }

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &Word) -> bool {
        self.enfa.accepts(word)
    }

    /// The recognized language (always local, by Lemma 3.17).
    pub fn language(&self) -> Language {
        Language::from_enfa(&self.enfa, None)
    }

    /// Splits the unique transition of letter `x` into an `x`-transition
    /// followed by a `z`-transition through a fresh, non-final state.
    ///
    /// This is the automaton `A'` used by the one-dangling rewriting of
    /// Proposition 7.9: every occurrence of `x` in the recognized language is
    /// replaced by the two-letter word `xz`. Errors if `x` has no transition or
    /// if `z` already has one.
    pub fn split_letter_transition(&self, x: Letter, z: Letter) -> Result<RoEnfa> {
        let (src, dst) = self.letter_transition(x).ok_or_else(|| {
            AutomataError::Precondition(format!("letter {x} has no transition to split"))
        })?;
        if self.letter_transition(z).is_some() {
            return Err(AutomataError::Precondition(format!(
                "letter {z} already has a transition; pick a fresh letter"
            )));
        }
        let mut enfa = Enfa::new();
        enfa.add_states(self.enfa.num_states());
        for &s in self.enfa.initial_states() {
            enfa.set_initial(s);
        }
        for &s in self.enfa.final_states() {
            enfa.set_final(s);
        }
        let fresh = enfa.add_state();
        for t in self.enfa.transitions() {
            match t.label {
                Some(l) if l == x => {
                    enfa.add_transition(src, x, fresh);
                    enfa.add_transition(fresh, z, dst);
                }
                Some(l) => enfa.add_transition(t.from, l, t.to),
                None => enfa.add_epsilon_transition(t.from, t.to),
            }
        }
        RoEnfa::from_enfa_checked(enfa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn lang(pattern: &str) -> Language {
        Language::parse(pattern).unwrap()
    }

    fn w(s: &str) -> Word {
        Word::from_str_word(s)
    }

    #[test]
    fn ro_enfa_for_figure_2_languages() {
        for pattern in ["ax*b", "ab|ad|cd", "a|b", "a*", "axb|axc"] {
            let l = lang(pattern);
            let ro = RoEnfa::for_local_language(&l).unwrap();
            assert!(ro.language().equals(&l), "RO-εNFA for {pattern} must recognize the language");
            // Read-once property: each letter has at most one transition.
            let n_letter_trans = ro.letter_transitions().count();
            assert!(n_letter_trans <= l.alphabet().len());
        }
    }

    #[test]
    fn non_local_language_is_rejected() {
        let err = RoEnfa::for_local_language(&lang("aa")).unwrap_err();
        assert!(matches!(err, AutomataError::Precondition(_)));
        assert!(RoEnfa::for_local_language(&lang("axb|cxd")).is_err());
    }

    #[test]
    fn from_enfa_checked_detects_duplicate_letters() {
        let mut e = Enfa::new();
        let s0 = e.add_state();
        let s1 = e.add_state();
        let s2 = e.add_state();
        e.set_initial(s0);
        e.set_final(s2);
        e.add_transition(s0, Letter('a'), s1);
        e.add_transition(s1, Letter('a'), s2);
        assert!(RoEnfa::from_enfa_checked(e).is_err());
    }

    #[test]
    fn from_enfa_of_local_language() {
        // Start from the Thompson εNFA of a local language: it is generally
        // not read-once, but Lemma 3.17 lets us convert it.
        let enfa = crate::regex::Regex::parse("ab|ad|cd").unwrap().to_enfa();
        let ro = RoEnfa::from_enfa_of_local_language(&enfa).unwrap();
        assert!(ro.accepts(&w("ab")));
        assert!(ro.accepts(&w("ad")));
        assert!(ro.accepts(&w("cd")));
        assert!(!ro.accepts(&w("cb")));
    }

    #[test]
    fn accessors_expose_structure() {
        let ro = RoEnfa::for_local_language(&lang("ax*b")).unwrap();
        let (src_a, dst_a) = ro.letter_transition(Letter('a')).unwrap();
        let (src_x, dst_x) = ro.letter_transition(Letter('x')).unwrap();
        assert_ne!(src_a, dst_a);
        assert_ne!(src_x, dst_x);
        assert!(ro.letter_transition(Letter('q')).is_none());
        assert!(ro.initial_states().count() >= 1);
        assert!(ro.final_states().count() >= 1);
        assert!(ro.epsilon_transitions().count() >= 2);
        assert!(ro.size() > ro.num_states());
    }

    #[test]
    fn epsilon_language_handling() {
        let l = lang("a*");
        let ro = RoEnfa::for_local_language(&l).unwrap();
        assert!(ro.accepts(&Word::epsilon()));
        assert!(ro.accepts(&w("aaa")));
        let empty = Language::empty(Alphabet::from_chars("ab"));
        let ro = RoEnfa::for_local_language(&empty).unwrap();
        assert!(!ro.accepts(&Word::epsilon()));
        assert!(!ro.accepts(&w("a")));
    }

    #[test]
    fn split_letter_transition_replaces_x_by_xz() {
        // L = ax*b; splitting x by z yields a(xz)*b.
        let ro = RoEnfa::for_local_language(&lang("ax*b")).unwrap();
        let split = ro.split_letter_transition(Letter('x'), Letter('z')).unwrap();
        assert!(split.accepts(&w("ab")));
        assert!(split.accepts(&w("axzb")));
        assert!(split.accepts(&w("axzxzb")));
        assert!(!split.accepts(&w("axb")));
        assert!(!split.accepts(&w("axzxb")));
        // Splitting errors on missing or duplicate letters.
        assert!(ro.split_letter_transition(Letter('q'), Letter('z')).is_err());
        assert!(ro.split_letter_transition(Letter('x'), Letter('a')).is_err());
        // No word of the split language ends with x (the fresh state is not final).
        assert!(!split.accepts(&w("ax")));
    }

    #[test]
    fn lemma_3_17_round_trip_preserves_locality() {
        // RO-εNFA → language → RO-εNFA again: language unchanged and local.
        let l = lang("ab|ad|cd");
        let ro = RoEnfa::for_local_language(&l).unwrap();
        let l2 = ro.language();
        assert!(is_local(&l2));
        let ro2 = RoEnfa::for_local_language(&l2).unwrap();
        assert!(ro2.language().equals(&l));
    }
}
