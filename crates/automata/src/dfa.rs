//! Deterministic finite automata, complete over an explicit alphabet.
//!
//! The [`Dfa`] type is the workhorse on which most language analyses run:
//! Boolean operations, equivalence, minimization, finiteness and enumeration of
//! finite languages are all implemented here. Transition tables are complete
//! (every state has a successor for every letter of the DFA's alphabet), which
//! keeps complementation and product constructions simple and bug-free.

use crate::alphabet::{Alphabet, Letter};
use crate::error::{AutomataError, Result};
use crate::word::Word;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A complete deterministic finite automaton over an explicit alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    alphabet: Alphabet,
    initial: usize,
    finals: Vec<bool>,
    /// `transitions[state][letter_index]` is the successor state.
    transitions: Vec<Vec<usize>>,
}

impl Dfa {
    /// Builds a DFA from its parts. Panics if the table is not complete or
    /// refers to out-of-range states.
    pub fn from_parts(
        alphabet: Alphabet,
        initial: usize,
        finals: Vec<bool>,
        transitions: Vec<Vec<usize>>,
    ) -> Self {
        let n = finals.len();
        assert_eq!(transitions.len(), n, "one transition row per state required");
        assert!(initial < n.max(1), "initial state out of range");
        for row in &transitions {
            assert_eq!(row.len(), alphabet.len(), "transition rows must cover the whole alphabet");
            for &t in row {
                assert!(t < n, "transition target out of range");
            }
        }
        Dfa { alphabet, initial, finals, transitions }
    }

    /// The DFA recognizing the empty language over `alphabet`.
    pub fn empty_language(alphabet: Alphabet) -> Self {
        let width = alphabet.len();
        Dfa { alphabet, initial: 0, finals: vec![false], transitions: vec![vec![0; width]] }
    }

    /// The DFA recognizing all of `Σ*` over `alphabet`.
    pub fn universal_language(alphabet: Alphabet) -> Self {
        let width = alphabet.len();
        Dfa { alphabet, initial: 0, finals: vec![true], transitions: vec![vec![0; width]] }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.finals.len()
    }

    /// The alphabet over which the DFA is complete.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The initial state.
    pub fn initial_state(&self) -> usize {
        self.initial
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: usize) -> bool {
        self.finals[state]
    }

    /// Successor of `state` by `letter`; `None` if the letter is outside the alphabet.
    pub fn successor(&self, state: usize, letter: Letter) -> Option<usize> {
        self.alphabet.index_of(letter).map(|li| self.transitions[state][li])
    }

    /// The state reached from `state` by reading `word` (`None` if a letter is
    /// outside the alphabet).
    pub fn run_from(&self, state: usize, word: &Word) -> Option<usize> {
        let mut current = state;
        for letter in word.iter() {
            current = self.successor(current, letter)?;
        }
        Some(current)
    }

    /// Whether the DFA accepts `word`. Words using letters outside the
    /// alphabet are rejected.
    pub fn accepts(&self, word: &Word) -> bool {
        match self.run_from(self.initial, word) {
            Some(state) => self.finals[state],
            None => false,
        }
    }

    /// Re-targets the DFA onto a (super-)alphabet: letters not previously in
    /// the alphabet lead to a fresh rejecting sink state.
    pub fn with_alphabet(&self, alphabet: &Alphabet) -> Dfa {
        if &self.alphabet == alphabet {
            return self.clone();
        }
        let n = self.num_states();
        let sink = n;
        let width = alphabet.len();
        let mut transitions = Vec::with_capacity(n + 1);
        for state in 0..n {
            let mut row = Vec::with_capacity(width);
            for letter in alphabet.iter() {
                match self.alphabet.index_of(letter) {
                    Some(li) => row.push(self.transitions[state][li]),
                    None => row.push(sink),
                }
            }
            transitions.push(row);
        }
        transitions.push(vec![sink; width]);
        let mut finals = self.finals.clone();
        finals.push(false);
        Dfa { alphabet: alphabet.clone(), initial: self.initial, finals, transitions }
    }

    /// Returns the same automaton with a different initial state: this
    /// recognizes the *left quotient* of the language by any word reaching
    /// `state` (the "language from `state`").
    pub fn with_initial_state(&self, state: usize) -> Dfa {
        assert!(state < self.num_states(), "state out of range");
        let mut out = self.clone();
        out.initial = state;
        out
    }

    /// Complement with respect to the DFA's own alphabet.
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for f in &mut out.finals {
            *f = !*f;
        }
        out
    }

    /// Generic product construction: the result accepts a word iff
    /// `combine(self accepts, other accepts)` holds. Both DFAs are first
    /// re-targeted onto the union of their alphabets.
    pub fn product(&self, other: &Dfa, combine: impl Fn(bool, bool) -> bool) -> Dfa {
        let alphabet = self.alphabet.union(&other.alphabet);
        let a = self.with_alphabet(&alphabet);
        let b = other.with_alphabet(&alphabet);
        let width = alphabet.len();

        let mut index: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut transitions: Vec<Vec<usize>> = Vec::new();
        let mut queue = VecDeque::new();

        let start = (a.initial, b.initial);
        index.insert(start, 0);
        pairs.push(start);
        transitions.push(vec![usize::MAX; width]);
        queue.push_back(0usize);

        while let Some(idx) = queue.pop_front() {
            let (sa, sb) = pairs[idx];
            for li in 0..width {
                let next = (a.transitions[sa][li], b.transitions[sb][li]);
                let next_idx = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        let i = pairs.len();
                        index.insert(next, i);
                        pairs.push(next);
                        transitions.push(vec![usize::MAX; width]);
                        queue.push_back(i);
                        i
                    }
                };
                transitions[idx][li] = next_idx;
            }
        }

        let finals = pairs.iter().map(|&(sa, sb)| combine(a.finals[sa], b.finals[sb])).collect();
        Dfa { alphabet, initial: 0, finals, transitions }
    }

    /// Intersection `L(self) ∩ L(other)`.
    pub fn intersection(&self, other: &Dfa) -> Dfa {
        self.product(other, |x, y| x && y)
    }

    /// Union `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |x, y| x || y)
    }

    /// Difference `L(self) \ L(other)`.
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product(other, |x, y| x && !y)
    }

    /// States reachable from the initial state.
    pub fn reachable_states(&self) -> BTreeSet<usize> {
        let mut seen = BTreeSet::from([self.initial]);
        let mut queue = VecDeque::from([self.initial]);
        while let Some(s) = queue.pop_front() {
            for &t in &self.transitions[s] {
                if seen.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        seen
    }

    /// States from which some final state is reachable.
    pub fn coaccessible_states(&self) -> BTreeSet<usize> {
        let mut pred: Vec<Vec<usize>> = vec![Vec::new(); self.num_states()];
        for (s, row) in self.transitions.iter().enumerate() {
            for &t in row {
                pred[t].push(s);
            }
        }
        let mut seen: BTreeSet<usize> =
            (0..self.num_states()).filter(|&s| self.finals[s]).collect();
        let mut queue: VecDeque<usize> = seen.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for &p in &pred[s] {
                if seen.insert(p) {
                    queue.push_back(p);
                }
            }
        }
        seen
    }

    /// *Useful* states: both reachable and co-accessible.
    pub fn useful_states(&self) -> BTreeSet<usize> {
        self.reachable_states().intersection(&self.coaccessible_states()).copied().collect()
    }

    /// Whether the recognized language is empty.
    pub fn is_empty_language(&self) -> bool {
        self.reachable_states().iter().all(|&s| !self.finals[s])
    }

    /// A shortest accepted word, or `None` if the language is empty.
    pub fn shortest_accepted_word(&self) -> Option<Word> {
        // BFS from the initial state, remembering parents.
        let n = self.num_states();
        let mut parent: Vec<Option<(usize, Letter)>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([self.initial]);
        seen[self.initial] = true;
        if self.finals[self.initial] {
            return Some(Word::epsilon());
        }
        while let Some(s) = queue.pop_front() {
            for (li, &t) in self.transitions[s].iter().enumerate() {
                if !seen[t] {
                    seen[t] = true;
                    parent[t] = Some((s, self.alphabet.letter_at(li)));
                    if self.finals[t] {
                        // Reconstruct.
                        let mut letters = Vec::new();
                        let mut cur = t;
                        while let Some((p, l)) = parent[cur] {
                            letters.push(l);
                            cur = p;
                        }
                        letters.reverse();
                        return Some(Word::from_letters(letters));
                    }
                    queue.push_back(t);
                }
            }
        }
        None
    }

    /// Whether both DFAs recognize the same language.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.difference(other).is_empty_language() && other.difference(self).is_empty_language()
    }

    /// Whether `L(self) ⊆ L(other)`.
    pub fn is_subset_of(&self, other: &Dfa) -> bool {
        self.difference(other).is_empty_language()
    }

    /// The set of letters that actually occur in some word of the language
    /// (i.e. letters on transitions between useful states).
    pub fn used_letters(&self) -> Alphabet {
        let useful = self.useful_states();
        let mut letters = Vec::new();
        for &s in &useful {
            for (li, &t) in self.transitions[s].iter().enumerate() {
                if useful.contains(&t) {
                    letters.push(self.alphabet.letter_at(li));
                }
            }
        }
        Alphabet::from_letters(letters)
    }

    /// Minimization by partition refinement (Moore's algorithm). The result
    /// only keeps reachable states and is the canonical minimal complete DFA.
    pub fn minimize(&self) -> Dfa {
        // Restrict to reachable states first.
        let reachable: Vec<usize> = self.reachable_states().into_iter().collect();
        let remap: BTreeMap<usize, usize> =
            reachable.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let n = reachable.len();
        let width = self.alphabet.len();
        let trans: Vec<Vec<usize>> = reachable
            .iter()
            .map(|&s| self.transitions[s].iter().map(|t| remap[t]).collect())
            .collect();
        let finals: Vec<bool> = reachable.iter().map(|&s| self.finals[s]).collect();
        let initial = remap[&self.initial];

        // Partition refinement.
        let mut class: Vec<usize> = finals.iter().map(|&f| usize::from(f)).collect();
        loop {
            let mut signature_index: BTreeMap<(usize, Vec<usize>), usize> = BTreeMap::new();
            let mut new_class = vec![0usize; n];
            for s in 0..n {
                let sig: Vec<usize> = trans[s].iter().map(|&t| class[t]).collect();
                let key = (class[s], sig);
                let next_id = signature_index.len();
                let id = *signature_index.entry(key).or_insert(next_id);
                new_class[s] = id;
            }
            if new_class == class {
                break;
            }
            class = new_class;
        }

        let num_classes = class.iter().copied().max().map_or(0, |m| m + 1);
        let mut min_finals = vec![false; num_classes];
        let mut min_trans = vec![vec![usize::MAX; width]; num_classes];
        for s in 0..n {
            let c = class[s];
            min_finals[c] = finals[s];
            for li in 0..width {
                min_trans[c][li] = class[trans[s][li]];
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            initial: class[initial],
            finals: min_finals,
            transitions: min_trans,
        }
    }

    /// Whether the recognized language is finite.
    pub fn is_finite_language(&self) -> bool {
        // The language is infinite iff some useful state lies on a cycle of
        // useful states. We detect cycles by DFS with colors.
        let useful = self.useful_states();
        let mut color: BTreeMap<usize, u8> = useful.iter().map(|&s| (s, 0u8)).collect();
        fn dfs(
            s: usize,
            dfa: &Dfa,
            useful: &BTreeSet<usize>,
            color: &mut BTreeMap<usize, u8>,
        ) -> bool {
            color.insert(s, 1);
            for &t in &dfa.transitions[s] {
                if !useful.contains(&t) {
                    continue;
                }
                match color.get(&t).copied().unwrap_or(0) {
                    1 => return true, // back edge: cycle
                    0 if dfs(t, dfa, useful, color) => {
                        return true;
                    }
                    _ => {}
                }
            }
            color.insert(s, 2);
            false
        }
        for &s in &useful {
            if color[&s] == 0 && dfs(s, self, &useful, &mut color) {
                return false;
            }
        }
        true
    }

    /// Enumerates all words of a finite language, sorted (by length then
    /// lexicographically on letters). Errors with
    /// [`AutomataError::InfiniteLanguage`] if the language is infinite.
    pub fn enumerate_words(&self) -> Result<Vec<Word>> {
        if !self.is_finite_language() {
            return Err(AutomataError::InfiniteLanguage);
        }
        let useful = self.useful_states();
        let mut out = Vec::new();
        if useful.is_empty() {
            return Ok(out);
        }
        // DFS over the DAG of useful states; the DAG has no cycles so path
        // length is bounded by |useful|.
        let mut stack: Vec<Letter> = Vec::new();
        fn dfs(
            s: usize,
            dfa: &Dfa,
            useful: &BTreeSet<usize>,
            stack: &mut Vec<Letter>,
            out: &mut Vec<Word>,
        ) {
            if dfa.finals[s] {
                out.push(Word::from_letters(stack.iter().copied()));
            }
            for (li, &t) in dfa.transitions[s].iter().enumerate() {
                if useful.contains(&t) {
                    stack.push(dfa.alphabet.letter_at(li));
                    dfs(t, dfa, useful, stack, out);
                    stack.pop();
                }
            }
        }
        if useful.contains(&self.initial) {
            dfs(self.initial, self, &useful, &mut stack, &mut out);
        }
        out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        out.dedup();
        Ok(out)
    }

    /// All accepted words of length at most `max_len`, sorted.
    pub fn words_up_to_length(&self, max_len: usize) -> Vec<Word> {
        let mut out = Vec::new();
        let mut frontier: Vec<(usize, Word)> = vec![(self.initial, Word::epsilon())];
        let useful = self.useful_states();
        if !useful.contains(&self.initial) {
            return out;
        }
        for _len in 0..=max_len {
            let mut next = Vec::new();
            for (state, word) in &frontier {
                if self.finals[*state] {
                    out.push(word.clone());
                }
                if word.len() < max_len {
                    for (li, &t) in self.transitions[*state].iter().enumerate() {
                        if useful.contains(&t) {
                            next.push((t, word.concat(&Word::single(self.alphabet.letter_at(li)))));
                        }
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        out.dedup();
        out
    }

    /// A **canonical textual form** of the recognized language: two DFAs
    /// produce the same string iff they recognize the same set of words,
    /// regardless of their state numbering or ambient alphabet.
    ///
    /// The form is computed by restricting the alphabet to the letters that
    /// actually occur in some word ([`Dfa::used_letters`]), minimizing, and
    /// renumbering states by BFS from the initial state in alphabet order
    /// (minimal complete DFAs of equal languages are isomorphic, and BFS
    /// discovery order is preserved by any isomorphism fixing the initial
    /// state). The result encodes the alphabet, the finality vector and the
    /// transition table; it is the collision-free key behind
    /// [`crate::language::Language::language_fingerprint`].
    pub fn canonical_form(&self) -> String {
        // Restrict to the letters occurring in accepted words, so the form
        // depends only on the set of words (e.g. a language handled over a
        // larger ambient alphabet keys the same as over its own letters).
        let used = self.used_letters();
        let restricted = if used == self.alphabet {
            self.clone()
        } else {
            let n = self.num_states();
            let mut transitions = Vec::with_capacity(n);
            for state in 0..n {
                let row = used
                    .iter()
                    .map(|letter| {
                        let li = self.alphabet.index_of(letter).expect("used letter in alphabet");
                        self.transitions[state][li]
                    })
                    .collect();
                transitions.push(row);
            }
            // Dropping letter columns can only remove words, and the removed
            // columns never carried an accepted word by definition of
            // `used_letters`; minimization below merges any dead states.
            Dfa { alphabet: used, initial: self.initial, finals: self.finals.clone(), transitions }
        };
        let minimal = restricted.minimize();

        // BFS renumbering: state ids in discovery order from the initial
        // state, exploring letters in alphabet order.
        let n = minimal.num_states();
        let mut order: Vec<usize> = vec![usize::MAX; n];
        let mut bfs: Vec<usize> = Vec::with_capacity(n);
        order[minimal.initial] = 0;
        bfs.push(minimal.initial);
        let mut head = 0;
        while head < bfs.len() {
            let s = bfs[head];
            head += 1;
            for &t in &minimal.transitions[s] {
                if order[t] == usize::MAX {
                    order[t] = bfs.len();
                    bfs.push(t);
                }
            }
        }

        let mut out = String::new();
        out.push_str("alphabet=");
        for letter in minimal.alphabet.iter() {
            out.push(letter.0);
        }
        out.push_str(";states=");
        out.push_str(&bfs.len().to_string());
        out.push_str(";finals=");
        for &s in &bfs {
            out.push(if minimal.finals[s] { '1' } else { '0' });
        }
        out.push_str(";delta=");
        for &s in &bfs {
            for &t in &minimal.transitions[s] {
                out.push_str(&order[t].to_string());
                out.push(',');
            }
            out.push(';');
        }
        out
    }

    /// The mirror language `L^R`, as a DFA (via NFA reversal + determinization).
    pub fn mirror(&self) -> Dfa {
        use crate::nfa::Nfa;
        let n = self.num_states();
        let mut nfa = Nfa::with_states(n);
        for s in 0..n {
            for (li, &t) in self.transitions[s].iter().enumerate() {
                nfa.add_transition(t, self.alphabet.letter_at(li), s);
            }
            if self.finals[s] {
                nfa.set_initial(s);
            }
        }
        nfa.set_final(self.initial);
        nfa.determinize(&self.alphabet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::Language;
    use crate::regex::Regex;

    fn w(s: &str) -> Word {
        Word::from_str_word(s)
    }

    fn dfa_for(pattern: &str) -> Dfa {
        let enfa = Regex::parse(pattern).unwrap().to_enfa();
        let nfa = enfa.to_nfa();
        let alphabet = Regex::parse(pattern).unwrap().letters();
        nfa.determinize(&alphabet)
    }

    #[test]
    fn accepts_and_complement() {
        let d = dfa_for("ax*b");
        assert!(d.accepts(&w("ab")));
        assert!(d.accepts(&w("axxb")));
        assert!(!d.accepts(&w("a")));
        let c = d.complement();
        assert!(!c.accepts(&w("ab")));
        assert!(c.accepts(&w("a")));
        assert!(c.accepts(&w("")));
    }

    #[test]
    fn boolean_operations() {
        let d1 = dfa_for("ab|cd");
        let d2 = dfa_for("cd|ef");
        let inter = d1.intersection(&d2);
        assert!(inter.accepts(&w("cd")));
        assert!(!inter.accepts(&w("ab")));
        assert!(!inter.accepts(&w("ef")));
        let uni = d1.union(&d2);
        assert!(uni.accepts(&w("ab")));
        assert!(uni.accepts(&w("ef")));
        let diff = d1.difference(&d2);
        assert!(diff.accepts(&w("ab")));
        assert!(!diff.accepts(&w("cd")));
    }

    #[test]
    fn emptiness_and_shortest_word() {
        let d = dfa_for("ab|cd");
        assert!(!d.is_empty_language());
        assert_eq!(d.shortest_accepted_word().unwrap().len(), 2);
        let e = d.difference(&d);
        assert!(e.is_empty_language());
        assert_eq!(e.shortest_accepted_word(), None);
        let eps = dfa_for("ε");
        assert_eq!(eps.shortest_accepted_word(), Some(Word::epsilon()));
    }

    #[test]
    fn equivalence_and_subset() {
        let d1 = dfa_for("a(b|c)");
        let d2 = dfa_for("ab|ac");
        assert!(d1.equivalent(&d2));
        let d3 = dfa_for("ab");
        assert!(d3.is_subset_of(&d1));
        assert!(!d1.is_subset_of(&d3));
        assert!(!d1.equivalent(&d3));
    }

    #[test]
    fn minimization_reduces_states_and_preserves_language() {
        let d = dfa_for("(a|b)*abb");
        let m = d.minimize();
        assert!(m.num_states() <= d.num_states());
        for word in ["abb", "aabb", "babb", "ab", "abba", "", "bbabb"] {
            assert_eq!(d.accepts(&w(word)), m.accepts(&w(word)), "{word}");
        }
        // The canonical minimal DFA for (a|b)*abb has 4 states (complete).
        assert_eq!(m.num_states(), 4);
    }

    #[test]
    fn minimization_is_canonical_for_equivalent_languages() {
        let m1 = dfa_for("a(b|c)").minimize();
        let m2 = dfa_for("ab|ac").minimize();
        assert_eq!(m1.num_states(), m2.num_states());
        assert!(m1.equivalent(&m2));
    }

    #[test]
    fn finiteness_detection() {
        assert!(dfa_for("ab|cd|abcde").is_finite_language());
        assert!(!dfa_for("ax*b").is_finite_language());
        assert!(!dfa_for("b(aa)*d").is_finite_language());
        assert!(dfa_for("∅").is_finite_language());
        assert!(dfa_for("ε").is_finite_language());
    }

    #[test]
    fn enumeration_of_finite_language() {
        let words = dfa_for("ab|cd|a").enumerate_words().unwrap();
        assert_eq!(words, vec![w("a"), w("ab"), w("cd")]);
        assert!(dfa_for("ax*b").enumerate_words().is_err());
        assert_eq!(dfa_for("∅").enumerate_words().unwrap(), Vec::<Word>::new());
        assert_eq!(dfa_for("ε").enumerate_words().unwrap(), vec![Word::epsilon()]);
    }

    #[test]
    fn words_up_to_length() {
        let d = dfa_for("a*b");
        let words = d.words_up_to_length(3);
        assert_eq!(words, vec![w("b"), w("ab"), w("aab")]);
        let d = dfa_for("ab");
        assert_eq!(d.words_up_to_length(1), Vec::<Word>::new());
        assert_eq!(d.words_up_to_length(5), vec![w("ab")]);
    }

    #[test]
    fn with_alphabet_extension() {
        let d = dfa_for("ab");
        let bigger = Alphabet::from_chars("abc");
        let e = d.with_alphabet(&bigger);
        assert!(e.accepts(&w("ab")));
        assert!(!e.accepts(&w("ac")));
        assert!(!e.accepts(&w("c")));
        // Complement over the bigger alphabet now accepts words with 'c'.
        assert!(e.complement().accepts(&w("c")));
    }

    #[test]
    fn used_letters_ignores_useless_transitions() {
        // In ab|cd over alphabet {a,b,c,d,e}: e never occurs in any word.
        let d = dfa_for("ab|cd").with_alphabet(&Alphabet::from_chars("abcde"));
        let used = d.used_letters();
        assert!(used.contains(Letter('a')));
        assert!(used.contains(Letter('d')));
        assert!(!used.contains(Letter('e')));
    }

    #[test]
    fn mirror_language() {
        let d = dfa_for("abc|xd");
        let m = d.mirror();
        assert!(m.accepts(&w("cba")));
        assert!(m.accepts(&w("dx")));
        assert!(!m.accepts(&w("abc")));
        // Mirror twice gives back the original language.
        assert!(m.mirror().equivalent(&d));
    }

    #[test]
    fn empty_and_universal() {
        let alpha = Alphabet::from_chars("ab");
        let empty = Dfa::empty_language(alpha.clone());
        assert!(empty.is_empty_language());
        let all = Dfa::universal_language(alpha);
        assert!(all.accepts(&w("")));
        assert!(all.accepts(&w("abba")));
        assert!(all.complement().is_empty_language());
    }

    #[test]
    fn language_level_round_trip() {
        // Cross-check with the high-level Language handle.
        let l = Language::parse("ax*b|cxd").unwrap();
        assert!(l.contains(&w("axb")));
        assert!(l.contains(&w("cxd")));
        assert!(!l.contains(&w("axd")));
    }
}
