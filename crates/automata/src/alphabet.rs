//! Letters and alphabets.
//!
//! Following the paper, a letter is a single symbol (rendered as a lowercase
//! character such as `a`, `b`, `x`), and an alphabet `Σ` is a finite set of
//! letters. Graph-database facts are labeled by letters, and regular path
//! queries are defined by regular languages over the alphabet.

use std::collections::BTreeSet;
use std::fmt;

/// A single letter of an alphabet.
///
/// Letters wrap a [`char`] so that they are `Copy`, ordered, hashable and cheap
/// to display. The paper only ever uses single-character letters; fresh letters
/// created by internal constructions (e.g. the letter `z` of Proposition 7.9)
/// are drawn from unused characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Letter(pub char);

impl Letter {
    /// Creates a letter from a character.
    pub const fn new(c: char) -> Self {
        Letter(c)
    }

    /// Returns the underlying character.
    pub const fn as_char(&self) -> char {
        self.0
    }
}

impl From<char> for Letter {
    fn from(c: char) -> Self {
        Letter(c)
    }
}

impl fmt::Display for Letter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A finite, ordered set of letters.
///
/// The order is the natural order on the underlying characters; letter indices
/// (used by the complete transition tables of [`crate::dfa::Dfa`]) are positions
/// in this order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct Alphabet {
    letters: Vec<Letter>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Alphabet { letters: Vec::new() }
    }

    /// Creates an alphabet from an iterator of letters (duplicates are ignored).
    pub fn from_letters<I: IntoIterator<Item = Letter>>(iter: I) -> Self {
        let set: BTreeSet<Letter> = iter.into_iter().collect();
        Alphabet { letters: set.into_iter().collect() }
    }

    /// Creates an alphabet from the characters of a string, e.g. `"abx"`.
    pub fn from_chars(s: &str) -> Self {
        Self::from_letters(s.chars().map(Letter))
    }

    /// Number of letters.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// Whether the alphabet contains `letter`.
    pub fn contains(&self, letter: Letter) -> bool {
        self.letters.binary_search(&letter).is_ok()
    }

    /// Index of a letter in the alphabet order, if present.
    pub fn index_of(&self, letter: Letter) -> Option<usize> {
        self.letters.binary_search(&letter).ok()
    }

    /// Letter at a given index (panics if out of range).
    pub fn letter_at(&self, index: usize) -> Letter {
        self.letters[index]
    }

    /// Iterator over the letters in order.
    pub fn iter(&self) -> impl Iterator<Item = Letter> + '_ {
        self.letters.iter().copied()
    }

    /// Returns the letters as a slice.
    pub fn letters(&self) -> &[Letter] {
        &self.letters
    }

    /// Adds a letter, returning a new alphabet (alphabets are small; copying is fine).
    pub fn with(&self, letter: Letter) -> Self {
        let mut set: BTreeSet<Letter> = self.letters.iter().copied().collect();
        set.insert(letter);
        Alphabet { letters: set.into_iter().collect() }
    }

    /// Removes a letter, returning a new alphabet.
    pub fn without(&self, letter: Letter) -> Self {
        Alphabet { letters: self.letters.iter().copied().filter(|&l| l != letter).collect() }
    }

    /// Union of two alphabets.
    pub fn union(&self, other: &Alphabet) -> Self {
        Self::from_letters(self.iter().chain(other.iter()))
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset_of(&self, other: &Alphabet) -> bool {
        self.iter().all(|l| other.contains(l))
    }

    /// Returns a letter not present in the alphabet.
    ///
    /// Tries the lowercase Latin letters first (so the result stays readable),
    /// then falls back to other Unicode characters. Used e.g. by the
    /// one-dangling rewriting of Proposition 7.9 which needs a fresh letter `z`.
    pub fn fresh_letter(&self) -> Letter {
        for c in 'a'..='z' {
            if !self.contains(Letter(c)) {
                return Letter(c);
            }
        }
        for c in 'A'..='Z' {
            if !self.contains(Letter(c)) {
                return Letter(c);
            }
        }
        let mut code = 0x1000u32;
        loop {
            if let Some(c) = char::from_u32(code) {
                if !self.contains(Letter(c)) {
                    return Letter(c);
                }
            }
            code += 1;
        }
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.letters.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Letter> for Alphabet {
    fn from_iter<I: IntoIterator<Item = Letter>>(iter: I) -> Self {
        Self::from_letters(iter)
    }
}

impl FromIterator<char> for Alphabet {
    fn from_iter<I: IntoIterator<Item = char>>(iter: I) -> Self {
        Self::from_letters(iter.into_iter().map(Letter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_chars_deduplicates_and_sorts() {
        let a = Alphabet::from_chars("bbaacc");
        assert_eq!(a.len(), 3);
        assert_eq!(a.letters(), &[Letter('a'), Letter('b'), Letter('c')]);
    }

    #[test]
    fn indexing_round_trips() {
        let a = Alphabet::from_chars("xyz");
        for (i, l) in a.iter().enumerate() {
            assert_eq!(a.index_of(l), Some(i));
            assert_eq!(a.letter_at(i), l);
        }
        assert_eq!(a.index_of(Letter('a')), None);
    }

    #[test]
    fn with_and_without() {
        let a = Alphabet::from_chars("ab");
        let b = a.with(Letter('c'));
        assert!(b.contains(Letter('c')));
        assert_eq!(b.len(), 3);
        let c = b.without(Letter('a'));
        assert!(!c.contains(Letter('a')));
        assert_eq!(c.len(), 2);
        // original untouched
        assert!(a.contains(Letter('a')));
    }

    #[test]
    fn union_and_subset() {
        let a = Alphabet::from_chars("ab");
        let b = Alphabet::from_chars("bc");
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert!(!u.is_subset_of(&a));
    }

    #[test]
    fn fresh_letter_avoids_existing() {
        let a = Alphabet::from_chars("abcdefghijklmnopqrstuvwxy");
        let f = a.fresh_letter();
        assert!(!a.contains(f));
        assert_eq!(f, Letter('z'));
        let b = Alphabet::from_chars("abcdefghijklmnopqrstuvwxyz");
        let f = b.fresh_letter();
        assert!(!b.contains(f));
    }

    #[test]
    fn display_is_readable() {
        let a = Alphabet::from_chars("ab");
        assert_eq!(a.to_string(), "{a, b}");
        assert_eq!(Letter('x').to_string(), "x");
    }

    #[test]
    fn empty_alphabet() {
        let a = Alphabet::new();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert!(!a.contains(Letter('a')));
    }
}
