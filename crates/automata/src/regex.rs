//! Regular expressions: AST, parser, and Thompson construction.
//!
//! The syntax follows the paper's notation: juxtaposition for concatenation,
//! `|` for union, `*` for the Kleene star. We additionally support `+`
//! (one-or-more), `?` (optional), parentheses, `ε` (or `_`) for the empty word
//! and `∅` for the empty language. Whitespace is ignored, so `a x* b` and
//! `ax*b` denote the same language. Any other non-reserved character is a
//! letter.

use crate::alphabet::{Alphabet, Letter};
use crate::enfa::Enfa;
use crate::error::{AutomataError, Result};
use crate::word::Word;
use std::fmt;

/// Abstract syntax tree of a regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The language {ε}.
    Epsilon,
    /// A single letter.
    Letter(Letter),
    /// Concatenation of sub-expressions (in order).
    Concat(Vec<Regex>),
    /// Union of sub-expressions.
    Union(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One or more repetitions.
    Plus(Box<Regex>),
    /// Zero or one occurrence.
    Optional(Box<Regex>),
}

impl Regex {
    /// Parses a regular expression from its textual form.
    ///
    /// ```
    /// use rpq_automata::regex::Regex;
    /// let r = Regex::parse("a x* b | c x d").unwrap();
    /// assert!(r.to_string().contains('|'));
    /// ```
    pub fn parse(input: &str) -> Result<Regex> {
        Parser::new(input).parse()
    }

    /// Builds a regex that is the union of the given literal words.
    pub fn from_words<'a, I: IntoIterator<Item = &'a Word>>(words: I) -> Regex {
        let mut branches = Vec::new();
        for word in words {
            if word.is_empty() {
                branches.push(Regex::Epsilon);
            } else {
                branches.push(Regex::Concat(word.iter().map(Regex::Letter).collect()));
            }
        }
        match branches.len() {
            0 => Regex::Empty,
            1 => branches.pop().unwrap(),
            _ => Regex::Union(branches),
        }
    }

    /// The set of letters occurring in the expression.
    pub fn letters(&self) -> Alphabet {
        let mut letters = Vec::new();
        self.collect_letters(&mut letters);
        Alphabet::from_letters(letters)
    }

    fn collect_letters(&self, out: &mut Vec<Letter>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Letter(l) => out.push(*l),
            Regex::Concat(parts) | Regex::Union(parts) => {
                for p in parts {
                    p.collect_letters(out);
                }
            }
            Regex::Star(inner) | Regex::Plus(inner) | Regex::Optional(inner) => {
                inner.collect_letters(out)
            }
        }
    }

    /// Thompson construction: builds an ε-NFA recognizing the same language.
    pub fn to_enfa(&self) -> Enfa {
        let mut enfa = Enfa::new();
        let (start, end) = self.build(&mut enfa);
        enfa.set_initial(start);
        enfa.set_final(end);
        enfa
    }

    /// Recursively builds the fragment for `self`, returning (entry, exit) states.
    fn build(&self, enfa: &mut Enfa) -> (usize, usize) {
        match self {
            Regex::Empty => {
                let s = enfa.add_state();
                let t = enfa.add_state();
                (s, t)
            }
            Regex::Epsilon => {
                let s = enfa.add_state();
                let t = enfa.add_state();
                enfa.add_epsilon_transition(s, t);
                (s, t)
            }
            Regex::Letter(l) => {
                let s = enfa.add_state();
                let t = enfa.add_state();
                enfa.add_transition(s, *l, t);
                (s, t)
            }
            Regex::Concat(parts) => {
                if parts.is_empty() {
                    return Regex::Epsilon.build(enfa);
                }
                let mut iter = parts.iter();
                let (start, mut prev_end) = iter.next().unwrap().build(enfa);
                for part in iter {
                    let (s, t) = part.build(enfa);
                    enfa.add_epsilon_transition(prev_end, s);
                    prev_end = t;
                }
                (start, prev_end)
            }
            Regex::Union(parts) => {
                let s = enfa.add_state();
                let t = enfa.add_state();
                if parts.is_empty() {
                    return (s, t);
                }
                for part in parts {
                    let (ps, pt) = part.build(enfa);
                    enfa.add_epsilon_transition(s, ps);
                    enfa.add_epsilon_transition(pt, t);
                }
                (s, t)
            }
            Regex::Star(inner) => {
                let s = enfa.add_state();
                let t = enfa.add_state();
                let (is, it) = inner.build(enfa);
                enfa.add_epsilon_transition(s, t);
                enfa.add_epsilon_transition(s, is);
                enfa.add_epsilon_transition(it, t);
                enfa.add_epsilon_transition(it, is);
                (s, t)
            }
            Regex::Plus(inner) => {
                let s = enfa.add_state();
                let t = enfa.add_state();
                let (is, it) = inner.build(enfa);
                enfa.add_epsilon_transition(s, is);
                enfa.add_epsilon_transition(it, t);
                enfa.add_epsilon_transition(it, is);
                (s, t)
            }
            Regex::Optional(inner) => {
                let s = enfa.add_state();
                let t = enfa.add_state();
                let (is, it) = inner.build(enfa);
                enfa.add_epsilon_transition(s, t);
                enfa.add_epsilon_transition(s, is);
                enfa.add_epsilon_transition(it, t);
                (s, t)
            }
        }
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn fmt_prec(r: &Regex, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            // prec: 0 = union context, 1 = concat context, 2 = unary context
            match r {
                Regex::Empty => write!(f, "∅"),
                Regex::Epsilon => write!(f, "ε"),
                Regex::Letter(l) => write!(f, "{l}"),
                Regex::Union(parts) => {
                    let need_parens = prec > 0;
                    if need_parens {
                        write!(f, "(")?;
                    }
                    for (i, p) in parts.iter().enumerate() {
                        if i > 0 {
                            write!(f, "|")?;
                        }
                        fmt_prec(p, f, 0)?;
                    }
                    if need_parens {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Regex::Concat(parts) => {
                    let need_parens = prec > 1;
                    if need_parens {
                        write!(f, "(")?;
                    }
                    for p in parts {
                        fmt_prec(p, f, 1)?;
                    }
                    if need_parens {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Regex::Star(inner) => {
                    fmt_prec(inner, f, 2)?;
                    write!(f, "*")
                }
                Regex::Plus(inner) => {
                    fmt_prec(inner, f, 2)?;
                    write!(f, "+")
                }
                Regex::Optional(inner) => {
                    fmt_prec(inner, f, 2)?;
                    write!(f, "?")
                }
            }
        }
        fmt_prec(self, f, 0)
    }
}

/// Recursive-descent parser for the regex syntax described in the module docs.
struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    input: &'a str,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { chars: input.chars().collect(), pos: 0, input }
    }

    fn parse(mut self) -> Result<Regex> {
        self.skip_ws();
        if self.pos >= self.chars.len() {
            // An empty input denotes the empty word, matching the convention
            // that an empty concatenation is ε.
            return Ok(Regex::Epsilon);
        }
        let r = self.parse_union()?;
        self.skip_ws();
        if self.pos < self.chars.len() {
            return Err(self.error(format!("unexpected character {:?}", self.chars[self.pos])));
        }
        Ok(r)
    }

    fn error(&self, message: String) -> AutomataError {
        let _ = self.input;
        AutomataError::RegexParse { position: self.pos, message }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn parse_union(&mut self) -> Result<Regex> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.pos += 1;
            branches.push(self.parse_concat()?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().unwrap())
        } else {
            Ok(Regex::Union(branches))
        }
    }

    fn parse_concat(&mut self) -> Result<Regex> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                None | Some('|') | Some(')') => break,
                _ => parts.push(self.parse_postfix()?),
            }
        }
        match parts.len() {
            0 => Ok(Regex::Epsilon),
            1 => Ok(parts.pop().unwrap()),
            _ => Ok(Regex::Concat(parts)),
        }
    }

    fn parse_postfix(&mut self) -> Result<Regex> {
        let mut base = self.parse_atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    base = Regex::Star(Box::new(base));
                }
                Some('+') => {
                    self.pos += 1;
                    base = Regex::Plus(Box::new(base));
                }
                Some('?') => {
                    self.pos += 1;
                    base = Regex::Optional(Box::new(base));
                }
                _ => break,
            }
        }
        Ok(base)
    }

    fn parse_atom(&mut self) -> Result<Regex> {
        match self.peek() {
            None => Err(self.error("unexpected end of input".into())),
            Some('(') => {
                self.pos += 1;
                // Allow "()" as ε.
                if self.peek() == Some(')') {
                    self.pos += 1;
                    return Ok(Regex::Epsilon);
                }
                let inner = self.parse_union()?;
                if self.peek() != Some(')') {
                    return Err(self.error("expected ')'".into()));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(')') => Err(self.error("unexpected ')'".into())),
            Some('*') | Some('+') | Some('?') => {
                Err(self.error("quantifier with nothing to repeat".into()))
            }
            Some('ε') | Some('_') => {
                self.pos += 1;
                Ok(Regex::Epsilon)
            }
            Some('∅') => {
                self.pos += 1;
                Ok(Regex::Empty)
            }
            Some(c) if c.is_alphanumeric() => {
                self.pos += 1;
                Ok(Regex::Letter(Letter(c)))
            }
            Some(c) => Err(self.error(format!("unexpected character {c:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::Word;

    fn accepts(pattern: &str, word: &str) -> bool {
        Regex::parse(pattern).unwrap().to_enfa().accepts(&Word::from_str_word(word))
    }

    #[test]
    fn parse_simple_words() {
        assert_eq!(
            Regex::parse("ab").unwrap(),
            Regex::Concat(vec![Regex::Letter(Letter('a')), Regex::Letter(Letter('b'))])
        );
        assert_eq!(Regex::parse("a").unwrap(), Regex::Letter(Letter('a')));
        assert_eq!(Regex::parse("").unwrap(), Regex::Epsilon);
        assert_eq!(Regex::parse("ε").unwrap(), Regex::Epsilon);
        assert_eq!(Regex::parse("∅").unwrap(), Regex::Empty);
    }

    #[test]
    fn whitespace_is_ignored() {
        assert_eq!(Regex::parse("a x * b").unwrap(), Regex::parse("ax*b").unwrap());
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::parse("(ab").is_err());
        assert!(Regex::parse("ab)").is_err());
        assert!(Regex::parse("*a").is_err());
        assert!(Regex::parse("a!b").is_err());
    }

    #[test]
    fn precedence_star_binds_tighter_than_concat() {
        // ax*b = a (x*) b
        assert!(accepts("ax*b", "ab"));
        assert!(accepts("ax*b", "axb"));
        assert!(accepts("ax*b", "axxxb"));
        assert!(!accepts("ax*b", "axax"));
    }

    #[test]
    fn precedence_concat_binds_tighter_than_union() {
        // ab|cd accepts ab and cd but not ad
        assert!(accepts("ab|cd", "ab"));
        assert!(accepts("ab|cd", "cd"));
        assert!(!accepts("ab|cd", "ad"));
        assert!(!accepts("ab|cd", "abcd"));
    }

    #[test]
    fn groups_and_quantifiers() {
        assert!(accepts("b(aa)*d", "bd"));
        assert!(accepts("b(aa)*d", "baad"));
        assert!(accepts("b(aa)*d", "baaaad"));
        assert!(!accepts("b(aa)*d", "bad"));
        assert!(accepts("a+", "aaa"));
        assert!(!accepts("a+", ""));
        assert!(accepts("a?b", "b"));
        assert!(accepts("a?b", "ab"));
        assert!(!accepts("a?b", "aab"));
    }

    #[test]
    fn paper_example_languages() {
        // Figure 1 languages
        assert!(accepts("abc|bcd", "abc"));
        assert!(accepts("abc|bcd", "bcd"));
        assert!(!accepts("abc|bcd", "abcd"));
        assert!(accepts("axb|cxd", "axb"));
        // Exactly two non-e letters, the first in {a, c}, the second in {a, d}.
        assert!(accepts("e*(a|c)e*(a|d)e*", "eaeede"));
        assert!(accepts("e*(a|c)e*(a|d)e*", "cd"));
        assert!(!accepts("e*(a|c)e*(a|d)e*", "cad"));
        assert!(accepts("e*(a|c)e*(a|d)e*", "eaed"));
        assert!(accepts("e*be*ce*|e*de*fe*", "ebec"));
        assert!(accepts("e*be*ce*|e*de*fe*", "df"));
        assert!(!accepts("e*be*ce*|e*de*fe*", "bd"));
    }

    #[test]
    fn from_words_builds_union() {
        let words = [Word::from_str_word("ab"), Word::from_str_word("cd")];
        let r = Regex::from_words(words.iter());
        let enfa = r.to_enfa();
        assert!(enfa.accepts(&Word::from_str_word("ab")));
        assert!(enfa.accepts(&Word::from_str_word("cd")));
        assert!(!enfa.accepts(&Word::from_str_word("ac")));
        // empty set of words
        let r = Regex::from_words(std::iter::empty());
        assert_eq!(r, Regex::Empty);
        // a single empty word
        let eps = [Word::epsilon()];
        let r = Regex::from_words(eps.iter());
        assert!(r.to_enfa().accepts(&Word::epsilon()));
    }

    #[test]
    fn letters_collected() {
        let r = Regex::parse("ax*b|cxd").unwrap();
        let a = r.letters();
        assert_eq!(a.len(), 5);
        assert!(a.contains(Letter('x')));
    }

    #[test]
    fn display_round_trips_through_parser() {
        for pattern in ["ab|cd", "ax*b", "b(aa)*d", "a(b|c)*d", "ab?c+", "ε", "∅"] {
            let r1 = Regex::parse(pattern).unwrap();
            let printed = r1.to_string();
            let r2 = Regex::parse(&printed).unwrap();
            // The ASTs may differ structurally but the languages must agree on
            // a sample of words.
            let e1 = r1.to_enfa();
            let e2 = r2.to_enfa();
            for word in ["", "a", "b", "ab", "cd", "abc", "axb", "bd", "baad", "abbc", "ac"] {
                let w = Word::from_str_word(word);
                assert_eq!(e1.accepts(&w), e2.accepts(&w), "pattern {pattern} word {word}");
            }
        }
    }

    #[test]
    fn empty_language_accepts_nothing() {
        let e = Regex::Empty.to_enfa();
        assert!(!e.accepts(&Word::epsilon()));
        assert!(!e.accepts(&Word::from_str_word("a")));
    }
}
