//! Four-legged languages (Section 5 of the paper).
//!
//! A language `L` is **four-legged** (Definition 5.1) when it is infix-free
//! and there exist a body letter `x` and four *non-empty* legs
//! `α, β, γ, δ ∈ Σ⁺` with `αxβ ∈ L`, `γxδ ∈ L` but `αxδ ∉ L`. Four-legged
//! languages are exactly the non-letter-Cartesian languages whose
//! counterexample can be chosen with non-empty legs; Theorem 5.3 shows that
//! resilience is NP-hard for every four-legged language.
//!
//! This module provides:
//!
//! * [`cartesian_violation`] — find a counterexample to the letter-Cartesian
//!   property (legs may be empty), which doubles as an alternative locality test;
//! * [`four_legged_witness`] / [`is_four_legged`] — the four-legged test with
//!   non-empty legs, for arbitrary regular languages (not only finite ones);
//! * [`stabilize_legs`] — Lemma 5.5: turn any four-legged witness into a
//!   witness with *stable* legs (no infix of `αxδ` is in `L`), as required by
//!   the hardness gadgets of Theorem 5.3.

use crate::alphabet::Letter;
use crate::dfa::Dfa;
use crate::language::Language;
use crate::local::CartesianViolation;
use crate::word::Word;

/// The language `{ α : ∃β, αxβ ∈ L }` of left contexts of the letter `x`,
/// where `β` is required to be non-empty when `nonempty_rest` is set.
fn left_context_dfa(language: &Language, x: Letter, nonempty_rest: bool) -> Dfa {
    let dfa = language.dfa();
    let coaccessible = dfa.coaccessible_states();
    let n = dfa.num_states();
    let mut finals = vec![false; n];
    for (p, f) in finals.iter_mut().enumerate() {
        if let Some(q) = dfa.successor(p, x) {
            let ok = if nonempty_rest {
                // ∃ letter b: succ(q, b) is co-accessible, i.e. some non-empty
                // word leads from q to acceptance.
                dfa.alphabet()
                    .iter()
                    .any(|b| dfa.successor(q, b).is_some_and(|r| coaccessible.contains(&r)))
            } else {
                coaccessible.contains(&q)
            };
            *f = ok;
        }
    }
    let transitions: Vec<Vec<usize>> = (0..n)
        .map(|s| dfa.alphabet().iter().map(|l| dfa.successor(s, l).unwrap()).collect())
        .collect();
    Dfa::from_parts(dfa.alphabet().clone(), dfa.initial_state(), finals, transitions)
}

/// The language `{ δ : ∃γ, γxδ ∈ L }` of right contexts of the letter `x`,
/// where `γ` is required non-empty when `nonempty_rest` is set.
fn right_context_dfa(language: &Language, x: Letter, nonempty_rest: bool) -> Dfa {
    let mirrored = language.mirror();
    left_context_dfa(&mirrored, x, nonempty_rest).mirror()
}

/// Shortest word of `dfa`'s language restricted to non-empty words if
/// `nonempty` is set. Returns `None` if that restriction is empty.
fn shortest_word(dfa: &Dfa, nonempty: bool) -> Option<Word> {
    if !nonempty {
        return dfa.shortest_accepted_word();
    }
    // Remove ε by intersecting with Σ⁺.
    let eps = Language::from_words([Word::epsilon()].iter()).with_alphabet(dfa.alphabet());
    let restricted = dfa.difference(eps.dfa());
    restricted.shortest_accepted_word()
}

/// Searches for a counterexample to the letter-Cartesian property
/// (Definition 3.3): a body `x` and legs `α, β, γ, δ` (possibly empty unless
/// `require_nonempty_legs`) such that `αxβ ∈ L`, `γxδ ∈ L` and `αxδ ∉ L`.
///
/// By Proposition 3.5, `cartesian_violation(L, false)` returns `None` exactly
/// when `L` is local. With `require_nonempty_legs = true` this is the
/// four-legged search of Definition 5.1 (for an infix-free language).
pub fn cartesian_violation(
    language: &Language,
    require_nonempty_legs: bool,
) -> Option<CartesianViolation> {
    let alphabet = language.alphabet().clone();
    let sigma_plus = {
        let eps = Language::from_words([Word::epsilon()].iter()).with_alphabet(&alphabet);
        Language::universal(alphabet.clone()).difference(&eps)
    };

    for x in alphabet.iter() {
        let left = Language::from_dfa(left_context_dfa(language, x, require_nonempty_legs));
        let right = Language::from_dfa(right_context_dfa(language, x, require_nonempty_legs));
        let (left, right) = if require_nonempty_legs {
            (left.intersection(&sigma_plus), right.intersection(&sigma_plus))
        } else {
            (left, right)
        };
        if left.is_empty() || right.is_empty() {
            continue;
        }
        // Candidate cross-product words α·x·δ.
        let x_lang = Language::from_words([Word::single(x)].iter()).with_alphabet(&alphabet);
        let candidates = left.concatenation(&x_lang).concatenation(&right);
        let outside = candidates.difference(language);
        let Some(witness) = outside.shortest_word() else {
            continue;
        };
        // Decompose the witness as α x δ with α in the left-context language
        // and δ in the right-context language.
        for i in 0..witness.len() {
            if witness.letter_at(i) != x {
                continue;
            }
            let alpha = witness.slice(0, i);
            let delta = witness.slice(i + 1, witness.len());
            if require_nonempty_legs && (alpha.is_empty() || delta.is_empty()) {
                continue;
            }
            if !left.contains(&alpha) || !right.contains(&delta) {
                continue;
            }
            // Find β with αxβ ∈ L (non-empty if required): it is a word of the
            // left quotient of L by αx.
            let dfa = language.dfa();
            let after_alpha_x = dfa.run_from(dfa.initial_state(), &alpha.concat(&Word::single(x)));
            let beta = after_alpha_x
                .and_then(|q| shortest_word(&dfa.with_initial_state(q), require_nonempty_legs));
            // Find γ with γxδ ∈ L: mirror reasoning, γ^R is in the left
            // quotient of L^R by δ^R x.
            let mirrored = language.mirror();
            let mdfa = mirrored.dfa();
            let after_delta_x =
                mdfa.run_from(mdfa.initial_state(), &delta.mirror().concat(&Word::single(x)));
            let gamma = after_delta_x
                .and_then(|q| shortest_word(&mdfa.with_initial_state(q), require_nonempty_legs))
                .map(|g| g.mirror());
            if let (Some(beta), Some(gamma)) = (beta, gamma) {
                let violation = CartesianViolation { body: x, alpha, beta, gamma, delta };
                debug_assert!(violation.verify(language), "constructed violation must verify");
                return Some(violation);
            }
        }
    }
    None
}

/// Finds a four-legged witness: a letter-Cartesian violation with all four
/// legs non-empty (Definition 5.1). The language is **not** required to be
/// infix-free by this function; combine with
/// [`Language::is_infix_free`](crate::language::Language::is_infix_free) or use
/// [`is_four_legged`] for the full definition.
pub fn four_legged_witness(language: &Language) -> Option<CartesianViolation> {
    cartesian_violation(language, true)
}

/// Whether the language is four-legged (Definition 5.1): infix-free and
/// admitting a letter-Cartesian violation with non-empty legs.
pub fn is_four_legged(language: &Language) -> bool {
    language.is_infix_free() && four_legged_witness(language).is_some()
}

/// Lemma 5.5: given a four-legged witness for an infix-free language, produce
/// a witness with **stable** legs, i.e. such that no infix of the cross word
/// `αxδ` belongs to `L`.
///
/// Panics in debug builds if the input violation does not verify or has empty
/// legs; in release builds the behaviour is then unspecified (garbage in,
/// garbage out), matching the lemma's preconditions.
pub fn stabilize_legs(language: &Language, violation: &CartesianViolation) -> CartesianViolation {
    debug_assert!(violation.verify(language));
    debug_assert!(violation.has_nonempty_legs());
    let x = violation.body;
    let cross = violation.cross_word();

    // Is some strict infix of αxδ in L? (αxδ itself is not, by assumption.)
    let infix_in_l = cross.strict_infixes().into_iter().find(|w| language.contains(w));
    let Some(eta) = infix_in_l else {
        return violation.clone();
    };

    // η must span the middle x: write α' = α₂α₁ and δ' = δ₁δ₂ with α₁, δ₁
    // non-empty such that η = α₁ x δ₁. Locate η as a contiguous factor of
    // αxδ that covers position |α| (the body).
    let alpha = &violation.alpha;
    let delta = &violation.delta;
    let body_pos = alpha.len();
    let mut decomposition = None;
    for start in 0..cross.len() {
        let end = start + eta.len();
        if end > cross.len() {
            break;
        }
        if cross.slice(start, end) == eta && start < body_pos + 1 && end > body_pos {
            // α₁ is the suffix of α starting at `start`, δ₁ the prefix of δ
            // ending at `end`.
            if start <= body_pos && end > body_pos {
                let alpha1 = alpha.slice(start, alpha.len());
                let delta1 = delta.slice(0, end - body_pos - 1);
                if !alpha1.is_empty() && !delta1.is_empty() {
                    decomposition = Some((start, end, alpha1, delta1));
                    break;
                }
            }
        }
    }
    let Some((start, end, alpha1, delta1)) = decomposition else {
        // By the proof of Lemma 5.5 this cannot happen for infix-free L;
        // fall back to returning the original witness.
        debug_assert!(false, "strict infix of the cross word did not span the body letter");
        return violation.clone();
    };
    let alpha2_nonempty = start > 0;
    let delta2_nonempty = end < cross.len();

    let stable = if delta2_nonempty {
        // α := γ', β := δ', γ := α₁, δ := δ₁.
        CartesianViolation {
            body: x,
            alpha: violation.gamma.clone(),
            beta: violation.delta.clone(),
            gamma: alpha1,
            delta: delta1,
        }
    } else {
        debug_assert!(alpha2_nonempty, "α₂ and δ₂ cannot both be empty (η is a strict infix)");
        // α := α₁, β := δ₁, γ := α', δ := β'.
        CartesianViolation {
            body: x,
            alpha: alpha1,
            beta: delta1,
            gamma: violation.alpha.clone(),
            delta: violation.beta.clone(),
        }
    };
    debug_assert!(stable.verify(language));
    debug_assert!(stable.has_nonempty_legs());
    debug_assert!(legs_are_stable(language, &stable));
    stable
}

/// Whether a witness has *stable* legs (Definition 5.4): no infix of the
/// cross word `αxδ` is in the language.
pub fn legs_are_stable(language: &Language, violation: &CartesianViolation) -> bool {
    violation.cross_word().infixes().iter().all(|w| !language.contains(w))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lang(pattern: &str) -> Language {
        Language::parse(pattern).unwrap()
    }

    #[test]
    fn cartesian_violation_agrees_with_locality() {
        use crate::local::is_local;
        for pattern in
            ["ax*b", "ab|ad|cd", "aa", "ab|bc", "axb|cxd", "abc|bcd", "b(aa)*d", "a*", "abc|be"]
        {
            let l = lang(pattern);
            let violation = cartesian_violation(&l, false);
            assert_eq!(
                violation.is_none(),
                is_local(&l),
                "letter-Cartesian violation iff non-local, for {pattern}"
            );
            if let Some(v) = violation {
                assert!(v.verify(&l), "violation must verify for {pattern}");
            }
        }
    }

    #[test]
    fn example_5_2_four_legged_languages() {
        // axb|cxd and axb|cxd|cxb are four-legged.
        assert!(is_four_legged(&lang("axb|cxd")));
        assert!(is_four_legged(&lang("axb|cxd|cxb")));
        // aa and ab|bc are non-local but NOT four-legged.
        assert!(!is_four_legged(&lang("aa")));
        assert!(!is_four_legged(&lang("ab|bc")));
        // Local languages are never four-legged.
        assert!(!is_four_legged(&lang("ax*b")));
        assert!(!is_four_legged(&lang("ab|ad|cd")));
    }

    #[test]
    fn four_legged_witness_has_nonempty_legs() {
        let l = lang("axb|cxd");
        let w = four_legged_witness(&l).unwrap();
        assert!(w.verify(&l));
        assert!(w.has_nonempty_legs());
    }

    #[test]
    fn figure_1_four_legged_examples() {
        // Languages listed under "Four-legged languages (Thm 5.3)" in Figure 1.
        for pattern in ["axb|cxd", "ax*b|cxd", "b(aa)*d", "axb|cxd|cxb"] {
            let l = lang(pattern).infix_free();
            assert!(
                four_legged_witness(&l).is_some(),
                "{pattern} should have a four-legged witness"
            );
        }
        // ab|ad|cd and abc|abd are local hence not four-legged.
        assert!(four_legged_witness(&lang("ab|ad|cd")).is_none());
        assert!(four_legged_witness(&lang("abc|abd")).is_none());
    }

    #[test]
    fn non_star_free_example_is_four_legged() {
        // Lemma 5.6: b(aa)*d is not star-free, hence four-legged.
        let l = lang("b(aa)*d");
        assert!(l.is_infix_free());
        assert!(is_four_legged(&l));
    }

    #[test]
    fn stabilization_produces_stable_legs() {
        for pattern in ["axb|cxd", "b(aa)*d", "ax*b|cxd", "axb|cxd|cxb", "axyb|cxyd"] {
            let l = lang(pattern).infix_free();
            if let Some(w) = four_legged_witness(&l) {
                let stable = stabilize_legs(&l, &w);
                assert!(stable.verify(&l), "{pattern}: stabilized witness verifies");
                assert!(stable.has_nonempty_legs(), "{pattern}: stabilized legs non-empty");
                assert!(legs_are_stable(&l, &stable), "{pattern}: legs are stable");
            } else {
                panic!("{pattern} expected to be four-legged");
            }
        }
    }

    #[test]
    fn infinite_four_legged_language() {
        // ax*b|cxd (infinite) is four-legged: α=a, β=b (via axb), γ=c, δ=d.
        let l = lang("ax*b|cxd");
        assert!(l.is_infix_free());
        let w = four_legged_witness(&l).unwrap();
        assert!(w.verify(&l));
        assert!(w.has_nonempty_legs());
    }

    #[test]
    fn local_languages_have_no_violation_at_all() {
        for pattern in ["ax*b", "ab|ad|cd", "a|b", "a*", "abc|abd"] {
            assert!(cartesian_violation(&lang(pattern), false).is_none(), "{pattern}");
            assert!(cartesian_violation(&lang(pattern), true).is_none(), "{pattern}");
        }
    }
}
