//! Nondeterministic finite automata with ε-transitions (ε-NFAs).
//!
//! This mirrors the paper's definition (Section 2): an ε-NFA is a tuple
//! `A = (S, I, F, Δ)` with states `S`, initial states `I ⊆ S`, final states
//! `F ⊆ S`, and a transition relation `Δ ⊆ S × (Σ ∪ {ε}) × S`. The *size*
//! `|A|` is the total number of states plus transitions.

use crate::alphabet::{Alphabet, Letter};
use crate::nfa::Nfa;
use crate::word::Word;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A transition of an ε-NFA: `(source, label, target)` where `label = None`
/// denotes an ε-transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Transition {
    /// Source state.
    pub from: usize,
    /// `Some(letter)` for a letter transition, `None` for an ε-transition.
    pub label: Option<Letter>,
    /// Target state.
    pub to: usize,
}

/// A nondeterministic finite automaton with ε-transitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Enfa {
    num_states: usize,
    initial: BTreeSet<usize>,
    finals: BTreeSet<usize>,
    transitions: BTreeSet<Transition>,
}

impl Enfa {
    /// Creates an empty automaton with no states.
    pub fn new() -> Self {
        Enfa::default()
    }

    /// Adds a fresh state and returns its index.
    pub fn add_state(&mut self) -> usize {
        self.num_states += 1;
        self.num_states - 1
    }

    /// Adds `n` fresh states, returning the index of the first one.
    pub fn add_states(&mut self, n: usize) -> usize {
        let first = self.num_states;
        self.num_states += n;
        first
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The size `|A| = |S| + |Δ|` as defined in the paper.
    pub fn size(&self) -> usize {
        self.num_states + self.transitions.len()
    }

    /// Marks a state as initial.
    pub fn set_initial(&mut self, state: usize) {
        assert!(state < self.num_states, "state out of range");
        self.initial.insert(state);
    }

    /// Marks a state as final.
    pub fn set_final(&mut self, state: usize) {
        assert!(state < self.num_states, "state out of range");
        self.finals.insert(state);
    }

    /// The set of initial states.
    pub fn initial_states(&self) -> &BTreeSet<usize> {
        &self.initial
    }

    /// The set of final states.
    pub fn final_states(&self) -> &BTreeSet<usize> {
        &self.finals
    }

    /// Whether `state` is final.
    pub fn is_final(&self, state: usize) -> bool {
        self.finals.contains(&state)
    }

    /// Adds a letter transition.
    pub fn add_transition(&mut self, from: usize, letter: Letter, to: usize) {
        assert!(from < self.num_states && to < self.num_states, "state out of range");
        self.transitions.insert(Transition { from, label: Some(letter), to });
    }

    /// Adds an ε-transition.
    pub fn add_epsilon_transition(&mut self, from: usize, to: usize) {
        assert!(from < self.num_states && to < self.num_states, "state out of range");
        self.transitions.insert(Transition { from, label: None, to });
    }

    /// Iterator over all transitions.
    pub fn transitions(&self) -> impl Iterator<Item = Transition> + '_ {
        self.transitions.iter().copied()
    }

    /// The set of letters appearing on transitions.
    pub fn letters(&self) -> Alphabet {
        Alphabet::from_letters(self.transitions.iter().filter_map(|t| t.label))
    }

    /// The ε-closure of a set of states: all states reachable via ε-transitions.
    pub fn epsilon_closure(&self, states: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closure = states.clone();
        let mut queue: VecDeque<usize> = states.iter().copied().collect();
        // Index ε-successors once for efficiency.
        let mut eps_succ: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for t in &self.transitions {
            if t.label.is_none() {
                eps_succ.entry(t.from).or_default().push(t.to);
            }
        }
        while let Some(s) = queue.pop_front() {
            if let Some(succs) = eps_succ.get(&s) {
                for &t in succs {
                    if closure.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
        closure
    }

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &Word) -> bool {
        let mut current = self.epsilon_closure(&self.initial);
        for letter in word.iter() {
            let mut next = BTreeSet::new();
            for t in &self.transitions {
                if t.label == Some(letter) && current.contains(&t.from) {
                    next.insert(t.to);
                }
            }
            current = self.epsilon_closure(&next);
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|s| self.finals.contains(s))
    }

    /// States reachable from the initial states (through any transitions).
    pub fn accessible_states(&self) -> BTreeSet<usize> {
        let mut succ: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for t in &self.transitions {
            succ.entry(t.from).or_default().push(t.to);
        }
        let mut seen = self.initial.clone();
        let mut queue: VecDeque<usize> = self.initial.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            if let Some(next) = succ.get(&s) {
                for &t in next {
                    if seen.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
        seen
    }

    /// States from which a final state is reachable.
    pub fn coaccessible_states(&self) -> BTreeSet<usize> {
        let mut pred: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for t in &self.transitions {
            pred.entry(t.to).or_default().push(t.from);
        }
        let mut seen = self.finals.clone();
        let mut queue: VecDeque<usize> = self.finals.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            if let Some(prev) = pred.get(&s) {
                for &t in prev {
                    if seen.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
        seen
    }

    /// Returns a *trimmed* equivalent automaton: only useful (accessible and
    /// co-accessible) states are kept (Definition C.3 of the paper's appendix).
    pub fn trimmed(&self) -> Enfa {
        let useful: BTreeSet<usize> =
            self.accessible_states().intersection(&self.coaccessible_states()).copied().collect();
        let mut remap: BTreeMap<usize, usize> = BTreeMap::new();
        let mut out = Enfa::new();
        for &s in &useful {
            let ns = out.add_state();
            remap.insert(s, ns);
        }
        for &s in &self.initial {
            if let Some(&ns) = remap.get(&s) {
                out.set_initial(ns);
            }
        }
        for &s in &self.finals {
            if let Some(&ns) = remap.get(&s) {
                out.set_final(ns);
            }
        }
        for t in &self.transitions {
            if let (Some(&f), Some(&to)) = (remap.get(&t.from), remap.get(&t.to)) {
                match t.label {
                    Some(l) => out.add_transition(f, l, to),
                    None => out.add_epsilon_transition(f, to),
                }
            }
        }
        out
    }

    /// The mirror automaton, recognizing the mirror language `L^R`.
    pub fn reversed(&self) -> Enfa {
        let mut out = Enfa::new();
        out.add_states(self.num_states);
        for &s in &self.finals {
            out.set_initial(s);
        }
        for &s in &self.initial {
            out.set_final(s);
        }
        for t in &self.transitions {
            match t.label {
                Some(l) => out.add_transition(t.to, l, t.from),
                None => out.add_epsilon_transition(t.to, t.from),
            }
        }
        out
    }

    /// Removes ε-transitions, producing an equivalent [`Nfa`].
    pub fn to_nfa(&self) -> Nfa {
        // Standard construction: a state q has an a-transition to q' in the NFA
        // iff some state in the ε-closure of {q} has an a-transition to q'.
        // A state is final iff its ε-closure contains a final state; initial
        // states are kept as-is.
        let mut nfa = Nfa::with_states(self.num_states);
        for s in 0..self.num_states {
            let closure = self.epsilon_closure(&BTreeSet::from([s]));
            if closure.iter().any(|q| self.finals.contains(q)) {
                nfa.set_final(s);
            }
            for t in &self.transitions {
                if let Some(l) = t.label {
                    if closure.contains(&t.from) {
                        nfa.add_transition(s, l, t.to);
                    }
                }
            }
        }
        for &s in &self.initial {
            nfa.set_initial(s);
        }
        nfa
    }

    /// Builds an ε-NFA recognizing exactly the given finite set of words.
    pub fn from_words<'a, I: IntoIterator<Item = &'a Word>>(words: I) -> Enfa {
        let mut enfa = Enfa::new();
        let start = enfa.add_state();
        enfa.set_initial(start);
        let accept = enfa.add_state();
        enfa.set_final(accept);
        for word in words {
            let mut current = start;
            for letter in word.iter() {
                let next = enfa.add_state();
                enfa.add_transition(current, letter, next);
                current = next;
            }
            enfa.add_epsilon_transition(current, accept);
        }
        enfa
    }

    /// Disjoint union of two automata, recognizing `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Enfa) -> Enfa {
        let mut out = self.clone();
        let offset = out.add_states(other.num_states);
        for t in &other.transitions {
            match t.label {
                Some(l) => out.add_transition(t.from + offset, l, t.to + offset),
                None => out.add_epsilon_transition(t.from + offset, t.to + offset),
            }
        }
        for &s in &other.initial {
            out.set_initial(s + offset);
        }
        for &s in &other.finals {
            out.set_final(s + offset);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn w(s: &str) -> Word {
        Word::from_str_word(s)
    }

    fn enfa_for(pattern: &str) -> Enfa {
        Regex::parse(pattern).unwrap().to_enfa()
    }

    #[test]
    fn accepts_basic() {
        let e = enfa_for("ab|ad|cd");
        assert!(e.accepts(&w("ab")));
        assert!(e.accepts(&w("ad")));
        assert!(e.accepts(&w("cd")));
        assert!(!e.accepts(&w("cb")));
        assert!(!e.accepts(&w("a")));
        assert!(!e.accepts(&w("")));
    }

    #[test]
    fn epsilon_closure_is_transitive() {
        let mut e = Enfa::new();
        let s0 = e.add_state();
        let s1 = e.add_state();
        let s2 = e.add_state();
        e.add_epsilon_transition(s0, s1);
        e.add_epsilon_transition(s1, s2);
        let closure = e.epsilon_closure(&BTreeSet::from([s0]));
        assert_eq!(closure, BTreeSet::from([s0, s1, s2]));
    }

    #[test]
    fn trimming_removes_useless_states() {
        let mut e = Enfa::new();
        let s0 = e.add_state();
        let s1 = e.add_state();
        let _dead = e.add_state(); // unreachable
        let s3 = e.add_state(); // reachable but not co-accessible
        e.set_initial(s0);
        e.set_final(s1);
        e.add_transition(s0, Letter('a'), s1);
        e.add_transition(s0, Letter('b'), s3);
        let t = e.trimmed();
        assert_eq!(t.num_states(), 2);
        assert!(t.accepts(&w("a")));
        assert!(!t.accepts(&w("b")));
    }

    #[test]
    fn reversal_recognizes_mirror() {
        let e = enfa_for("abc|xd");
        let r = e.reversed();
        assert!(r.accepts(&w("cba")));
        assert!(r.accepts(&w("dx")));
        assert!(!r.accepts(&w("abc")));
    }

    #[test]
    fn to_nfa_preserves_language() {
        for pattern in ["ax*b", "ab|ad|cd", "b(aa)*d", "a?b+c*"] {
            let e = enfa_for(pattern);
            let n = e.to_nfa();
            for word in
                ["", "a", "ab", "ad", "cd", "axb", "axxb", "bd", "baad", "b", "bc", "abc", "abbcc"]
            {
                assert_eq!(
                    e.accepts(&w(word)),
                    n.accepts(&w(word)),
                    "pattern {pattern}, word {word}"
                );
            }
        }
    }

    #[test]
    fn from_words_recognizes_exactly_those_words() {
        let words = [w("aa"), w("abc"), w("")];
        let e = Enfa::from_words(words.iter());
        assert!(e.accepts(&w("aa")));
        assert!(e.accepts(&w("abc")));
        assert!(e.accepts(&w("")));
        assert!(!e.accepts(&w("a")));
        assert!(!e.accepts(&w("ab")));
        assert!(!e.accepts(&w("aabc")));
    }

    #[test]
    fn union_of_automata() {
        let e1 = enfa_for("ab");
        let e2 = enfa_for("cd");
        let u = e1.union(&e2);
        assert!(u.accepts(&w("ab")));
        assert!(u.accepts(&w("cd")));
        assert!(!u.accepts(&w("ac")));
    }

    #[test]
    fn size_counts_states_and_transitions() {
        let mut e = Enfa::new();
        let s0 = e.add_state();
        let s1 = e.add_state();
        e.add_transition(s0, Letter('a'), s1);
        e.add_epsilon_transition(s0, s1);
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn letters_reported() {
        let e = enfa_for("ax*b|cxd");
        let letters = e.letters();
        assert_eq!(letters.len(), 5);
    }

    #[test]
    fn example_automaton_a3_from_figure_2c() {
        // RO-εNFA A3 for ab|ad|cd from Figure 2c, built by hand.
        let mut e = Enfa::new();
        let s1 = e.add_state();
        let s2 = e.add_state();
        let s3 = e.add_state();
        let s4 = e.add_state();
        let s5 = e.add_state();
        e.set_initial(s1);
        e.set_initial(s4);
        e.set_final(s3);
        e.set_final(s5);
        e.add_transition(s1, Letter('a'), s2);
        e.add_transition(s2, Letter('b'), s3);
        e.add_transition(s4, Letter('d'), s5);
        e.add_transition(s4, Letter('c'), s4); // placeholder replaced below
                                               // Rebuild properly: c goes from a fresh initial to s4; use the paper's shape:
                                               // s1 -a-> s2, s2 -b-> s3, s2 -ε-> s4, s4 -d-> s5, (c-transition from an initial state to s4)
        let mut e = Enfa::new();
        let s1 = e.add_state();
        let s2 = e.add_state();
        let s3 = e.add_state();
        let s4 = e.add_state();
        let s5 = e.add_state();
        let c_src = e.add_state();
        e.set_initial(s1);
        e.set_initial(c_src);
        e.set_final(s3);
        e.set_final(s5);
        e.add_transition(s1, Letter('a'), s2);
        e.add_transition(s2, Letter('b'), s3);
        e.add_epsilon_transition(s2, s4);
        e.add_transition(s4, Letter('d'), s5);
        e.add_transition(c_src, Letter('c'), s4);
        assert!(e.accepts(&w("ab")));
        assert!(e.accepts(&w("ad")));
        assert!(e.accepts(&w("cd")));
        assert!(!e.accepts(&w("cb")));
    }
}
