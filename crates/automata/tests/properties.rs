//! Property-based tests for the formal-language substrate, driven by randomly
//! generated regular expressions over a two-letter alphabet.

use proptest::prelude::*;
use rpq_automata::four_legged::{cartesian_violation, four_legged_witness};
use rpq_automata::local::is_local;
use rpq_automata::regex::Regex;
use rpq_automata::{Language, Letter, Word};

/// Strategy for small regular expressions over {a, b}.
fn small_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        Just(Regex::Letter(Letter('a'))),
        Just(Regex::Letter(Letter('b'))),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Regex::Concat),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Regex::Union),
            inner.clone().prop_map(|r| Regex::Star(Box::new(r))),
            inner.prop_map(|r| Regex::Optional(Box::new(r))),
        ]
    })
}

/// All words over {a, b} of length at most `n`.
fn words_up_to(n: usize) -> Vec<Word> {
    let mut out = vec![Word::epsilon()];
    let mut frontier = vec![Word::epsilon()];
    for _ in 0..n {
        let mut next = Vec::new();
        for w in &frontier {
            for c in ['a', 'b'] {
                let extended = w.concat(&Word::single(Letter(c)));
                out.push(extended.clone());
                next.push(extended);
            }
        }
        frontier = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn dfa_pipeline_agrees_with_the_thompson_enfa(regex in small_regex()) {
        let enfa = regex.to_enfa();
        let language = Language::from_regex(&regex);
        for word in words_up_to(4) {
            prop_assert_eq!(enfa.accepts(&word), language.contains(&word), "{} on {}", regex, word);
        }
    }

    #[test]
    fn infix_free_sublanguage_is_correct(regex in small_regex()) {
        let language = Language::from_regex(&regex);
        let if_language = language.infix_free();
        // IF(L) ⊆ L, IF(L) is infix-free, and membership matches the
        // definition on bounded-length words.
        prop_assert!(if_language.is_subset_of(&language));
        prop_assert!(if_language.is_infix_free());
        for word in words_up_to(4) {
            let expected = language.contains(&word)
                && word.strict_infixes().iter().all(|infix| !language.contains(infix));
            prop_assert_eq!(if_language.contains(&word), expected, "{} on {}", regex, word);
        }
    }

    #[test]
    fn mirror_is_an_involution(regex in small_regex()) {
        let language = Language::from_regex(&regex);
        let mirrored = language.mirror();
        prop_assert!(mirrored.mirror().equals(&language));
        for word in words_up_to(4) {
            prop_assert_eq!(language.contains(&word), mirrored.contains(&word.mirror()));
        }
    }

    #[test]
    fn locality_iff_no_cartesian_violation(regex in small_regex()) {
        let language = Language::from_regex(&regex);
        let local = is_local(&language);
        let violation = cartesian_violation(&language, false);
        prop_assert_eq!(local, violation.is_none());
        if let Some(v) = violation {
            prop_assert!(v.verify(&language));
        }
        // Local languages are never four-legged.
        if local {
            prop_assert!(four_legged_witness(&language).is_none());
        }
    }

    #[test]
    fn four_legged_witnesses_always_verify(regex in small_regex()) {
        let language = Language::from_regex(&regex).infix_free();
        if let Some(witness) = four_legged_witness(&language) {
            prop_assert!(witness.verify(&language));
            prop_assert!(witness.has_nonempty_legs());
            let stable = rpq_automata::four_legged::stabilize_legs(&language, &witness);
            prop_assert!(stable.verify(&language));
            prop_assert!(rpq_automata::four_legged::legs_are_stable(&language, &stable));
        }
    }

    #[test]
    fn boolean_operations_are_consistent(r1 in small_regex(), r2 in small_regex()) {
        let l1 = Language::from_regex(&r1);
        let l2 = Language::from_regex(&r2);
        let union = l1.union(&l2);
        let inter = l1.intersection(&l2);
        let diff = l1.difference(&l2);
        for word in words_up_to(3) {
            let (in1, in2) = (l1.contains(&word), l2.contains(&word));
            prop_assert_eq!(union.contains(&word), in1 || in2);
            prop_assert_eq!(inter.contains(&word), in1 && in2);
            prop_assert_eq!(diff.contains(&word), in1 && !in2);
        }
    }
}
