//! # `rpq-store`: server-hosted snapshot databases with incremental solves
//!
//! `rpq-server`'s original protocol ships the whole database inside every
//! request — fine for one-shot experiments, hopeless for the monitoring
//! workload the resilience-under-updates story needs (solve after every small
//! edit). This crate hosts **named databases** server-side:
//!
//! * a database is an **append-only log** of [`FactChange`] entries
//!   ([`rpq_graphdb::delta`]); `db_put` seeds the log from a full database
//!   text, `db_patch` appends parsed changes;
//! * a **snapshot is a log offset** — taking one is O(1), every snapshot is
//!   immutable by construction, and `db_snapshot` merely names an offset so
//!   it can be referred to (and pinned) later;
//! * concrete [`GraphDb`] **materializations are derived state**, built
//!   lazily per requested snapshot and cached with LRU eviction — *named*
//!   snapshots and each database's head are pinned, unnamed historical
//!   materializations are evicted first;
//! * `db_solve` binds a query to `(name, snapshot)` and reuses the
//!   [`IncrementalSolver`] retained per database: consecutive solves at
//!   advancing snapshots hand the engine exactly the fact delta between
//!   them, so the flow network is patched and the min-cut warm-started
//!   instead of rebuilt (see `rpq_resilience::engine`'s incremental path).
//!
//! The store is thread-safe: a short-lived registry lock hands out per-
//! database handles, and each database serializes its own operations, so
//! solves on different databases run concurrently. Lock order is always
//! registry → database, never the reverse.

#![forbid(unsafe_code)]
use rpq_graphdb::delta::{changes_from_db, materialize, parse_patch, FactChange};
use rpq_graphdb::text::{self, ParseError};
use rpq_graphdb::GraphDb;
use rpq_obs::Trace;
use rpq_resilience::algorithms::{Algorithm, ResilienceError, ResilienceOutcome};
use rpq_resilience::engine::{IncrementalSolver, PreparedQuery, SolveMode};
use rpq_resilience::prelude::FlowAlgorithm;
use rpq_resilience::router::{RouteBudget, Router, TieredOutcome};
use rpq_resilience::rpq::Semantics;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Configuration of a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// The maximum number of hosted databases (`db_put` of a *new* name past
    /// this fails with [`StoreError::StoreFull`]) — also the budget of cached
    /// materializations across the store, above which unpinned ones are
    /// evicted LRU-first.
    pub capacity: usize,
    /// The maximum `db_put` / `db_patch` body size in bytes; larger bodies
    /// fail with [`StoreError::BodyTooLarge`] before parsing.
    pub max_body_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { capacity: 64, max_body_bytes: 8 * 1024 * 1024 }
    }
}

/// A reference to a snapshot of a hosted database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotRef {
    /// The database's current head (its log length).
    Head,
    /// An explicit log offset, as returned by `db_put` / `db_patch`.
    Offset(usize),
    /// A name registered via `db_snapshot`.
    Named(String),
}

/// Errors raised by store operations. [`StoreError::code`] gives the stable
/// machine-readable error code the wire protocol attaches to each of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The store already hosts `capacity` databases.
    StoreFull {
        /// The configured database capacity.
        capacity: usize,
    },
    /// A `db_put` / `db_patch` body exceeded the configured size limit.
    BodyTooLarge {
        /// The offending body size.
        bytes: usize,
        /// The configured limit.
        limit: usize,
    },
    /// No database of this name is hosted.
    UnknownDatabase {
        /// The requested name.
        name: String,
    },
    /// The snapshot reference does not resolve on this database.
    UnknownSnapshot {
        /// The database the reference was resolved against.
        database: String,
        /// A rendering of the offending reference (offset or name).
        snapshot: String,
    },
    /// A database or patch body failed to parse.
    Parse(ParseError),
    /// The store's own invariants broke mid-request (for example a database
    /// lock poisoned by a panicking writer). The request fails with a typed
    /// error instead of unwinding the worker.
    Internal {
        /// What broke, for the error message.
        detail: &'static str,
    },
}

impl StoreError {
    /// The stable machine-readable error code (`"code"` on the wire).
    pub fn code(&self) -> &'static str {
        match self {
            StoreError::StoreFull { .. } => "store_full",
            StoreError::BodyTooLarge { .. } => "body_too_large",
            StoreError::UnknownDatabase { .. } => "unknown_database",
            StoreError::UnknownSnapshot { .. } => "unknown_snapshot",
            StoreError::Parse(_) => "parse",
            StoreError::Internal { .. } => "internal",
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::StoreFull { capacity } => {
                write!(f, "the store already hosts {capacity} databases")
            }
            StoreError::BodyTooLarge { bytes, limit } => {
                write!(f, "body of {bytes} bytes exceeds the {limit}-byte limit")
            }
            StoreError::UnknownDatabase { name } => write!(f, "unknown database {name:?}"),
            StoreError::UnknownSnapshot { database, snapshot } => {
                write!(f, "unknown snapshot {snapshot:?} of database {database:?}")
            }
            StoreError::Parse(e) => write!(f, "parse error: {e}"),
            StoreError::Internal { detail } => write!(f, "internal store error: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ParseError> for StoreError {
    fn from(e: ParseError) -> Self {
        StoreError::Parse(e)
    }
}

/// The incremental-solve state one database retains between `db_solve`s.
struct SolveSession {
    /// The plan the retained state was built under; compared by pointer
    /// identity, so a plan evicted and re-prepared by the server's query
    /// cache simply forces a (correct) full rebuild.
    plan: Arc<PreparedQuery>,
    /// The snapshot the retained flow network describes.
    offset: usize,
    /// The engine-side retained network + flow.
    solver: IncrementalSolver,
}

/// A cached materialization of one snapshot.
struct Materialization {
    offset: usize,
    graph: Arc<GraphDb>,
    last_used: u64,
}

/// One entry of the cross-snapshot result cache: a fully solved outcome at a
/// pinned log offset. Snapshots are immutable (offsets never change meaning
/// under `db_patch`), so an entry stays valid until `db_put` rewrites the
/// whole log. Keyed semantically — by the *language fingerprint* rather than
/// the plan pointer — so a plan evicted and re-prepared by the server's query
/// cache still hits.
struct CachedResult {
    /// [`rpq_automata::Language::language_fingerprint`] of the solved query.
    fingerprint: u64,
    /// The query's cost semantics (set vs bag) — same language, different
    /// resilience values.
    semantics: Semantics,
    /// The planned backend; a forced-algorithm override must not reuse
    /// another backend's answer (their witnesses, bounds and errors differ).
    algorithm: Algorithm,
    /// The MinCut backend: optimal cuts (witnesses) can differ across
    /// backends even when the value agrees.
    flow: FlowAlgorithm,
    /// The log offset the solve bound to.
    offset: usize,
    /// Whether the outcome carries the contingency-set witness; a cut-less
    /// entry is upgraded in place when a `want_cut` solve recomputes it.
    has_cut: bool,
    /// The cached engine outcome.
    outcome: ResilienceOutcome,
    /// The solve mode of the original computation (reported on hits).
    mode: SolveMode,
    last_used: u64,
}

/// Per-database cap on cached results, evicted LRU past this.
const RESULT_CACHE_CAP: usize = 128;

/// One hosted database: the append-only fact log plus derived state.
#[derive(Default)]
struct Database {
    log: Vec<FactChange>,
    /// Summed [`FactChange::log_bytes`] of the log.
    log_bytes: usize,
    /// Named snapshots (name → pinned offset).
    named: BTreeMap<String, usize>,
    /// Cached materializations, at most one per offset.
    materialized: Vec<Materialization>,
    /// Cross-snapshot result cache (see [`CachedResult`]).
    results: Vec<CachedResult>,
    session: Option<SolveSession>,
}

impl Database {
    fn resolve(&self, db_name: &str, snapshot: &SnapshotRef) -> Result<usize, StoreError> {
        match snapshot {
            SnapshotRef::Head => Ok(self.log.len()),
            SnapshotRef::Offset(o) if *o <= self.log.len() => Ok(*o),
            SnapshotRef::Offset(o) => Err(StoreError::UnknownSnapshot {
                database: db_name.to_string(),
                snapshot: o.to_string(),
            }),
            SnapshotRef::Named(n) => self.named.get(n).copied().ok_or_else(|| {
                StoreError::UnknownSnapshot { database: db_name.to_string(), snapshot: n.clone() }
            }),
        }
    }

    /// Returns the (cached) materialization at `offset`, and whether this
    /// call had to build it (a cache miss — counted by the store).
    fn materialize_at(&mut self, offset: usize, tick: u64) -> (Arc<GraphDb>, bool) {
        if let Some(m) = self.materialized.iter_mut().find(|m| m.offset == offset) {
            m.last_used = tick;
            return (Arc::clone(&m.graph), false);
        }
        // lint: allow(panic-freedom, resolve checks every offset against the log length)
        let graph = Arc::new(materialize(&self.log[..offset]));
        self.materialized.push(Materialization {
            offset,
            graph: Arc::clone(&graph),
            last_used: tick,
        });
        (graph, true)
    }

    /// The number of facts alive at the head, without materializing.
    fn live_facts(&self) -> usize {
        let mut alive = HashSet::new();
        for change in &self.log {
            match change {
                FactChange::Put { .. } => {
                    alive.insert(change.key());
                }
                FactChange::Delete { .. } => {
                    alive.remove(&change.key());
                }
            }
        }
        alive.len()
    }
}

/// The result of a [`Store::put`] or [`Store::patch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendResult {
    /// The snapshot id (log offset) after the operation.
    pub snapshot: usize,
    /// `put`: facts in the database; `patch`: changes appended.
    pub entries: usize,
}

/// The result of a [`Store::solve`]: per-snapshot engine errors are carried
/// *inside* (with the resolved snapshot id), so a batch over several
/// snapshots can report each failure against the snapshot that caused it.
pub struct StoreSolve {
    /// The resolved snapshot id the solve bound to.
    pub snapshot: usize,
    /// The materialized database the solve ran against (needed to render
    /// contingency-set facts).
    pub graph: Arc<GraphDb>,
    /// The engine outcome, or the engine error for this snapshot.
    pub result: Result<(ResilienceOutcome, SolveMode), ResilienceError>,
}

/// The result of a [`Store::route`]: [`StoreSolve`] plus the routing
/// decision and whether the cross-snapshot result cache answered.
pub struct StoreRoute {
    /// The resolved snapshot id the solve bound to.
    pub snapshot: usize,
    /// The materialized database the solve ran against.
    pub graph: Arc<GraphDb>,
    /// The routed outcome (tier, degradation, reason included), or the
    /// engine error for this snapshot.
    pub result: Result<(TieredOutcome, SolveMode), ResilienceError>,
    /// Whether the answer came from the cross-snapshot result cache (O(1),
    /// no engine work; always a full, non-degraded answer).
    pub result_cached: bool,
}

/// Per-database summary returned by [`Store::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseInfo {
    /// The database name.
    pub name: String,
    /// The head snapshot id.
    pub snapshot: usize,
    /// Facts alive at the head.
    pub facts: usize,
    /// Total log entries (including overwritten / deleted ones).
    pub log_entries: usize,
    /// Estimated heap bytes retained by the log.
    pub log_bytes: usize,
    /// Named snapshots, in name order.
    pub named: Vec<(String, usize)>,
    /// Cached materializations.
    pub materialized: usize,
}

/// Aggregate store metrics (see [`Store::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Hosted databases.
    pub databases: usize,
    /// Named snapshots across all databases.
    pub named_snapshots: usize,
    /// Cached materializations across all databases.
    pub materialized: usize,
    /// Log entries across all databases.
    pub log_entries: usize,
    /// Estimated log heap bytes across all databases.
    pub log_bytes: usize,
    /// `db_solve`s answered by the incremental (patch + warm-start) path.
    pub incremental_solves: u64,
    /// `db_solve`s answered by a full build.
    pub full_solves: u64,
    /// Snapshot materializations built from the log (cache misses).
    pub materializations: u64,
    /// Materializations evicted to respect the capacity.
    pub evictions: u64,
    /// `db_solve`s answered by the cross-snapshot result cache.
    pub result_hits: u64,
    /// `db_solve`s that had to run the engine (the cache could not answer).
    pub result_misses: u64,
    /// The configured database / materialization capacity.
    pub capacity: usize,
    /// The configured body-size limit.
    pub max_body_bytes: usize,
}

/// A thread-safe registry of named snapshot databases (see the
/// [module docs](self)).
pub struct Store {
    config: StoreConfig,
    databases: Mutex<HashMap<String, Arc<Mutex<Database>>>>,
    tick: AtomicU64,
    incremental_solves: AtomicU64,
    full_solves: AtomicU64,
    materializations: AtomicU64,
    evictions: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
}

impl Store {
    /// An empty store.
    pub fn new(config: StoreConfig) -> Store {
        Store {
            config,
            databases: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            incremental_solves: AtomicU64::new(0),
            full_solves: AtomicU64::new(0),
            materializations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            result_hits: AtomicU64::new(0),
            result_misses: AtomicU64::new(0),
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    fn next_tick(&self) -> u64 {
        // Ticks only order LRU stamps; uniqueness comes from the atomic RMW
        // itself and cross-thread visibility rides the database locks.
        // lint: allow(relaxed-ok, ticks are LRU stamps with no synchronization role)
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn database(&self, name: &str) -> Result<Arc<Mutex<Database>>, StoreError> {
        // The registry map itself stays valid across a poisoning panic
        // (insert/remove of Arc handles cannot leave it half-updated), so
        // recover rather than fail every subsequent request.
        self.databases
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| StoreError::UnknownDatabase { name: name.to_string() })
    }

    fn check_body(&self, bytes: usize) -> Result<(), StoreError> {
        if bytes > self.config.max_body_bytes {
            return Err(StoreError::BodyTooLarge { bytes, limit: self.config.max_body_bytes });
        }
        Ok(())
    }

    /// Creates (or fully replaces) the database `name` from a database text
    /// body, seeding a fresh log of `Put` entries. Replacing drops named
    /// snapshots, cached materializations and any retained solve state.
    pub fn put(&self, name: &str, body: &str) -> Result<AppendResult, StoreError> {
        self.check_body(body.len())?;
        let graph = text::parse(body)?;
        let log = changes_from_db(&graph);
        let handle = {
            let mut registry = self.databases.lock().unwrap_or_else(PoisonError::into_inner);
            if !registry.contains_key(name) && registry.len() >= self.config.capacity {
                return Err(StoreError::StoreFull { capacity: self.config.capacity });
            }
            Arc::clone(registry.entry(name.to_string()).or_default())
        };
        let tick = self.next_tick();
        let facts = graph.num_facts();
        let snapshot = log.len();
        {
            let mut db = handle
                .lock()
                .map_err(|_| StoreError::Internal { detail: "database lock poisoned" })?;
            db.log_bytes = log.iter().map(FactChange::log_bytes).sum();
            db.log = log;
            db.named.clear();
            db.materialized =
                vec![Materialization { offset: snapshot, graph: Arc::new(graph), last_used: tick }];
            // A put rewrites the log, so old offsets no longer mean the same
            // snapshots: cached results are stale, drop them all.
            db.results.clear();
            db.session = None;
        }
        self.evict_materializations();
        Ok(AppendResult { snapshot, entries: facts })
    }

    /// Appends a parsed patch body to `name`'s log, returning the new head
    /// snapshot. Existing snapshots (named or not) are unaffected — they
    /// simply keep pointing below the new head.
    pub fn patch(&self, name: &str, body: &str) -> Result<AppendResult, StoreError> {
        self.check_body(body.len())?;
        let changes = parse_patch(body)?;
        let handle = self.database(name)?;
        let mut db =
            handle.lock().map_err(|_| StoreError::Internal { detail: "database lock poisoned" })?;
        db.log_bytes += changes.iter().map(FactChange::log_bytes).sum::<usize>();
        let applied = changes.len();
        db.log.extend(changes);
        Ok(AppendResult { snapshot: db.log.len(), entries: applied })
    }

    /// Names the snapshot `at` (default: the current head) of database
    /// `name`, pinning its materialization against eviction. Returns the
    /// pinned offset. Re-registering an existing snapshot name repoints it.
    pub fn snapshot(
        &self,
        name: &str,
        snapshot_name: &str,
        at: Option<SnapshotRef>,
    ) -> Result<usize, StoreError> {
        let handle = self.database(name)?;
        let mut db =
            handle.lock().map_err(|_| StoreError::Internal { detail: "database lock poisoned" })?;
        let offset = db.resolve(name, &at.unwrap_or(SnapshotRef::Head))?;
        db.named.insert(snapshot_name.to_string(), offset);
        Ok(offset)
    }

    /// Resolves and materializes a snapshot of `name`, returning the
    /// resolved offset and the (cached) concrete database.
    pub fn materialize(
        &self,
        name: &str,
        snapshot: &SnapshotRef,
    ) -> Result<(usize, Arc<GraphDb>), StoreError> {
        let handle = self.database(name)?;
        let tick = self.next_tick();
        let (offset, graph, built) = {
            let mut db = handle
                .lock()
                .map_err(|_| StoreError::Internal { detail: "database lock poisoned" })?;
            let offset = db.resolve(name, snapshot)?;
            let (graph, built) = db.materialize_at(offset, tick);
            (offset, graph, built)
        };
        if built {
            self.materializations.fetch_add(1, Ordering::Relaxed);
        }
        self.evict_materializations();
        Ok((offset, graph))
    }

    /// Solves `prepared` against one snapshot of `name`, riding the
    /// database's retained incremental state when the solve continues the
    /// same plan at the same or a later snapshot. Engine errors come back
    /// *inside* the [`StoreSolve`] together with the resolved snapshot id;
    /// only store-level problems (unknown database / snapshot) are `Err`.
    pub fn solve(
        &self,
        name: &str,
        snapshot: &SnapshotRef,
        prepared: &Arc<PreparedQuery>,
        want_cut: bool,
    ) -> Result<StoreSolve, StoreError> {
        self.solve_traced(name, snapshot, prepared, want_cut, &mut Trace::disabled())
    }

    /// [`Store::solve`] with phase tracing: when `trace` is enabled the
    /// snapshot resolution + materialization is recorded as a `materialize`
    /// span and the engine records its own solve phases. A disabled trace
    /// makes this identical to [`Store::solve`].
    pub fn solve_traced(
        &self,
        name: &str,
        snapshot: &SnapshotRef,
        prepared: &Arc<PreparedQuery>,
        want_cut: bool,
        trace: &mut Trace,
    ) -> Result<StoreSolve, StoreError> {
        let fingerprint = prepared.rpq().language().language_fingerprint();
        self.route_traced(
            name,
            snapshot,
            prepared,
            fingerprint,
            want_cut,
            &RouteBudget::UNLIMITED,
            &Router::new(),
            trace,
        )
        .map(|routed| StoreSolve {
            snapshot: routed.snapshot,
            graph: routed.graph,
            result: routed.result.map(|(tiered, mode)| (tiered.outcome, mode)),
        })
    }

    /// [`Store::solve`] under a [`RouteBudget`] (see
    /// [`rpq_resilience::router`]), with the cross-snapshot result cache in
    /// front of the engine.
    ///
    /// `fingerprint` is the query's
    /// [`language_fingerprint`](rpq_automata::Language::language_fingerprint)
    /// — callers that already canonicalized the language (the server's query
    /// cache) pass it in so the store never re-minimizes. Cache entries are
    /// keyed by `(fingerprint, semantics, algorithm, flow backend, offset)`:
    /// snapshots are immutable, so a repeated `db_solve` of a pinned snapshot
    /// answers in O(1) from the cache, whatever the budget (a hit always
    /// satisfies any deadline and is never degraded). Only full-fidelity
    /// (non-degraded) outcomes are cached; degraded bounds depend on the
    /// caller's budget and are recomputed per request.
    #[allow(clippy::too_many_arguments)]
    pub fn route(
        &self,
        name: &str,
        snapshot: &SnapshotRef,
        prepared: &Arc<PreparedQuery>,
        fingerprint: u64,
        want_cut: bool,
        budget: &RouteBudget,
        router: &Router,
    ) -> Result<StoreRoute, StoreError> {
        self.route_traced(
            name,
            snapshot,
            prepared,
            fingerprint,
            want_cut,
            budget,
            router,
            &mut Trace::disabled(),
        )
    }

    /// [`Store::route`] with phase tracing.
    #[allow(clippy::too_many_arguments)]
    pub fn route_traced(
        &self,
        name: &str,
        snapshot: &SnapshotRef,
        prepared: &Arc<PreparedQuery>,
        fingerprint: u64,
        want_cut: bool,
        budget: &RouteBudget,
        router: &Router,
        trace: &mut Trace,
    ) -> Result<StoreRoute, StoreError> {
        let handle = self.database(name)?;
        let tick = self.next_tick();
        let planned = prepared.plan().algorithm;
        let flow = prepared.options().flow_backend;
        let semantics = prepared.rpq().semantics();
        let (offset, graph, built, result, result_cached) = {
            let materialize_timer = trace.begin();
            let mut db = handle
                .lock()
                .map_err(|_| StoreError::Internal { detail: "database lock poisoned" })?;
            let offset = db.resolve(name, snapshot)?;
            let (graph, built) = db.materialize_at(offset, tick);
            trace.end(materialize_timer, "materialize");
            if let Some(entry) = db.results.iter_mut().find(|r| {
                r.fingerprint == fingerprint
                    && r.semantics == semantics
                    && r.algorithm == planned
                    && r.flow == flow
                    && r.offset == offset
                    && (r.has_cut || !want_cut)
            }) {
                entry.last_used = tick;
                let mut outcome = entry.outcome.clone();
                if !want_cut {
                    outcome.contingency_set = None;
                }
                let tiered = TieredOutcome {
                    tier: outcome.algorithm.tier(),
                    outcome,
                    planned,
                    degraded: false,
                    shed: false,
                    reason: "cross-snapshot result cache hit".to_string(),
                    estimated_cost_us: 0,
                };
                let mode = entry.mode;
                self.result_hits.fetch_add(1, Ordering::Relaxed);
                if built {
                    self.materializations.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(StoreRoute {
                    snapshot: offset,
                    graph,
                    result: Ok((tiered, mode)),
                    result_cached: true,
                });
            }
            self.result_misses.fetch_add(1, Ordering::Relaxed);
            let Database { log, session, results, .. } = &mut *db;
            let result = match session {
                Some(s) if Arc::ptr_eq(&s.plan, prepared) && s.offset <= offset => {
                    // lint: allow(panic-freedom, session offsets never pass the resolve-checked head)
                    let delta = &log[s.offset..offset];
                    // lint: allow(lock-discipline, solves serialize per database under its own lock by design)
                    let result = prepared.route_incremental_traced(
                        &mut s.solver,
                        &graph,
                        Some(delta),
                        want_cut,
                        budget,
                        router,
                        trace,
                    );
                    // A degraded answer leaves the retained flow parked at
                    // its old frontier — do not advance past facts the
                    // network never saw.
                    if matches!(&result, Ok((t, _)) if !t.degraded) {
                        s.offset = offset;
                    }
                    result
                }
                Some(s) if Arc::ptr_eq(&s.plan, prepared) => {
                    // A solve *behind* the session's frontier (an old
                    // snapshot): answer one-shot, keep the retained state
                    // parked at its frontier for the next forward solve.
                    prepared
                        .route_with_cut_traced(&graph, want_cut, budget, router, trace)
                        .map(|t| (t, SolveMode::Full))
                }
                _ => {
                    let mut s = SolveSession {
                        plan: Arc::clone(prepared),
                        offset,
                        solver: IncrementalSolver::new(),
                    };
                    // lint: allow(lock-discipline, solves serialize per database under its own lock by design)
                    let result = prepared.route_incremental_traced(
                        &mut s.solver,
                        &graph,
                        None,
                        want_cut,
                        budget,
                        router,
                        trace,
                    );
                    *session = Some(s);
                    result
                }
            };
            if let Ok((tiered, mode)) = &result {
                if !tiered.degraded {
                    // Cache (or upgrade) the full-fidelity answer for this
                    // immutable snapshot.
                    results.retain(|r| {
                        !(r.fingerprint == fingerprint
                            && r.semantics == semantics
                            && r.algorithm == planned
                            && r.flow == flow
                            && r.offset == offset)
                    });
                    if results.len() >= RESULT_CACHE_CAP {
                        if let Some(oldest) = results
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, r)| r.last_used)
                            .map(|(i, _)| i)
                        {
                            results.swap_remove(oldest);
                        }
                    }
                    results.push(CachedResult {
                        fingerprint,
                        semantics,
                        algorithm: planned,
                        flow,
                        offset,
                        has_cut: want_cut,
                        outcome: tiered.outcome.clone(),
                        mode: *mode,
                        last_used: tick,
                    });
                }
            }
            (offset, graph, built, result, false)
        };
        if built {
            self.materializations.fetch_add(1, Ordering::Relaxed);
        }
        self.evict_materializations();
        match &result {
            Ok((_, SolveMode::Incremental)) => {
                self.incremental_solves.fetch_add(1, Ordering::Relaxed);
            }
            Ok((_, SolveMode::Full)) | Err(_) => {
                self.full_solves.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(StoreRoute { snapshot: offset, graph, result, result_cached })
    }

    /// Summaries of every hosted database, in name order.
    pub fn list(&self) -> Vec<DatabaseInfo> {
        let handles: Vec<(String, Arc<Mutex<Database>>)> = {
            let registry = self.databases.lock().unwrap_or_else(PoisonError::into_inner);
            registry.iter().map(|(n, h)| (n.clone(), Arc::clone(h))).collect()
        };
        let mut infos: Vec<DatabaseInfo> = handles
            .into_iter()
            .map(|(name, handle)| {
                let db = handle.lock().unwrap_or_else(PoisonError::into_inner);
                DatabaseInfo {
                    facts: db
                        .materialized
                        .iter()
                        .find(|m| m.offset == db.log.len())
                        .map(|m| m.graph.num_facts())
                        .unwrap_or_else(|| db.live_facts()),
                    name,
                    snapshot: db.log.len(),
                    log_entries: db.log.len(),
                    log_bytes: db.log_bytes,
                    named: db.named.iter().map(|(n, &o)| (n.clone(), o)).collect(),
                    materialized: db.materialized.len(),
                }
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Drops the database `name` (idempotent). Returns whether it existed.
    pub fn drop_database(&self, name: &str) -> bool {
        self.databases.lock().unwrap_or_else(PoisonError::into_inner).remove(name).is_some()
    }

    /// Aggregate metrics over all hosted databases.
    pub fn stats(&self) -> StoreStats {
        let infos = self.list();
        StoreStats {
            databases: infos.len(),
            named_snapshots: infos.iter().map(|i| i.named.len()).sum(),
            materialized: infos.iter().map(|i| i.materialized).sum(),
            log_entries: infos.iter().map(|i| i.log_entries).sum(),
            log_bytes: infos.iter().map(|i| i.log_bytes).sum(),
            incremental_solves: self.incremental_solves.load(Ordering::Relaxed),
            full_solves: self.full_solves.load(Ordering::Relaxed),
            materializations: self.materializations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
            capacity: self.config.capacity,
            max_body_bytes: self.config.max_body_bytes,
        }
    }

    /// Evicts least-recently-used **unpinned** materializations until the
    /// store-wide count fits the capacity. Named snapshots and every
    /// database's head are pinned and never evicted; databases locked by
    /// concurrent operations are skipped (their caches are in use anyway).
    fn evict_materializations(&self) {
        let budget = self.config.capacity.max(1);
        loop {
            let handles: Vec<Arc<Mutex<Database>>> = {
                let registry = self.databases.lock().unwrap_or_else(PoisonError::into_inner);
                registry.values().map(Arc::clone).collect()
            };
            let mut total = 0usize;
            let mut victim: Option<(Arc<Mutex<Database>>, usize, u64)> = None;
            for handle in &handles {
                let Ok(db) = handle.try_lock() else { continue };
                let head = db.log.len();
                for m in &db.materialized {
                    total += 1;
                    let pinned = m.offset == head || db.named.values().any(|&o| o == m.offset);
                    if !pinned && victim.as_ref().is_none_or(|v| m.last_used < v.2) {
                        victim = Some((Arc::clone(handle), m.offset, m.last_used));
                    }
                }
            }
            if total <= budget {
                return;
            }
            let Some((handle, offset, _)) = victim else { return };
            let Ok(mut db) = handle.try_lock() else { return };
            let before = db.materialized.len();
            db.materialized.retain(|m| m.offset != offset);
            if db.materialized.len() < before {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                return; // raced with a drop; avoid spinning
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_resilience::engine::Engine;
    use rpq_resilience::rpq::{ResilienceValue, Rpq};

    fn prepared(pattern: &str) -> Arc<PreparedQuery> {
        Arc::new(Engine::new().prepare(&Rpq::parse(pattern).unwrap()).unwrap())
    }

    fn value(store: &Store, name: &str, at: SnapshotRef, plan: &Arc<PreparedQuery>) -> u128 {
        let solve = store.solve(name, &at, plan, false).unwrap();
        match solve.result.unwrap().0.value {
            ResilienceValue::Finite(v) => v,
            ResilienceValue::Infinite => u128::MAX,
        }
    }

    #[test]
    fn put_patch_snapshot_solve_round_trip() {
        let store = Store::new(StoreConfig::default());
        let plan = prepared("ax*b");
        let put = store.put("g", "s a u\nu x v\nv b t\n").unwrap();
        assert_eq!((put.snapshot, put.entries), (3, 3));
        store.snapshot("g", "before", None).unwrap();
        assert_eq!(value(&store, "g", SnapshotRef::Head, &plan), 1);

        let patched = store.patch("g", "+ u x w\n+ w b t\n").unwrap();
        assert_eq!((patched.snapshot, patched.entries), (5, 2));
        // Two disjoint x-paths now: resilience 1 still (cut `s a u`)… verify
        // against both the head and the historical snapshots.
        assert_eq!(value(&store, "g", SnapshotRef::Head, &plan), 1);
        let removed = store.patch("g", "- s a u\n").unwrap();
        assert_eq!(removed.snapshot, 6);
        assert_eq!(value(&store, "g", SnapshotRef::Head, &plan), 0);
        // Historical snapshots still answer with their own value.
        assert_eq!(value(&store, "g", SnapshotRef::Named("before".into()), &plan), 1);
        assert_eq!(value(&store, "g", SnapshotRef::Offset(3), &plan), 1);
        assert_eq!(value(&store, "g", SnapshotRef::Head, &plan), 0);

        // The forward solves after the first ride the incremental path.
        let stats = store.stats();
        assert!(stats.incremental_solves >= 2, "{stats:?}");
        assert!(stats.full_solves >= 1);
    }

    #[test]
    fn incremental_sessions_survive_across_patches() {
        let store = Store::new(StoreConfig::default());
        let plan = prepared("ax*b");
        store.put("g", "s a u\nu x v\nv b t\n").unwrap();
        assert_eq!(value(&store, "g", SnapshotRef::Head, &plan), 1);
        let full_after_first = store.stats().full_solves;
        for i in 0..10 {
            store.patch("g", &format!("+ u x m{i}\n+ m{i} b t\n")).unwrap();
            assert_eq!(value(&store, "g", SnapshotRef::Head, &plan), 1);
        }
        let stats = store.stats();
        assert_eq!(stats.full_solves, full_after_first, "patch solves must stay incremental");
        assert_eq!(stats.incremental_solves, 10);
        // A different plan replaces the session (full solve), then resumes
        // incrementally.
        let other = prepared("ab|ad");
        store.solve("g", &SnapshotRef::Head, &other, false).unwrap();
        store.patch("g", "+ s a z\n").unwrap();
        let solve = store.solve("g", &SnapshotRef::Head, &other, false).unwrap();
        assert_eq!(solve.result.unwrap().1, SolveMode::Incremental);
    }

    #[test]
    fn repeated_solves_of_a_pinned_snapshot_hit_the_result_cache() {
        let store = Store::new(StoreConfig::default());
        let plan = prepared("ax*b");
        store.put("g", "s a u\nu x v\nv b t\n").unwrap();
        store.snapshot("g", "pin", None).unwrap();
        let pin = SnapshotRef::Named("pin".into());
        assert_eq!(value(&store, "g", pin.clone(), &plan), 1);
        let after_miss = store.stats();
        assert_eq!((after_miss.result_hits, after_miss.result_misses), (0, 1));
        // Second solve of the same pinned snapshot: O(1) from the cache,
        // without running the engine.
        assert_eq!(value(&store, "g", pin.clone(), &plan), 1);
        let after_hit = store.stats();
        assert_eq!(after_hit.result_hits, 1);
        assert_eq!(
            after_hit.incremental_solves + after_hit.full_solves,
            after_miss.incremental_solves + after_miss.full_solves,
            "a result-cache hit must not run a solve"
        );
        // The key is semantic (language fingerprint), not the plan pointer:
        // a re-prepared plan for the same language still hits.
        let replanned = prepared("ax*b");
        assert_eq!(value(&store, "g", pin.clone(), &replanned), 1);
        assert_eq!(store.stats().result_hits, 2);
        // A different language is a different key.
        let other = prepared("ab|ad");
        let solve = store.solve("g", &pin, &other, false).unwrap();
        assert!(solve.result.is_ok());
        assert_eq!(store.stats().result_misses, 2);
        // `db_put` rewrites the log, so every cached result is dropped.
        store.put("g", "s a u\nu b t\n").unwrap();
        let misses_before = store.stats().result_misses;
        assert_eq!(value(&store, "g", SnapshotRef::Head, &plan), 1);
        assert_eq!(store.stats().result_misses, misses_before + 1);
    }

    #[test]
    fn result_cache_entries_upgrade_to_carry_cuts() {
        let store = Store::new(StoreConfig::default());
        let plan = prepared("ax*b");
        store.put("g", "s a u\nu x v\nv b t\n").unwrap();
        // Cached without a cut: a want_cut solve must recompute…
        assert!(store
            .solve("g", &SnapshotRef::Head, &plan, false)
            .unwrap()
            .result
            .unwrap()
            .0
            .contingency_set
            .is_none());
        let cut = store.solve("g", &SnapshotRef::Head, &plan, true).unwrap();
        assert!(cut.result.unwrap().0.contingency_set.is_some());
        assert_eq!(store.stats().result_misses, 2);
        // …after which the upgraded entry serves both shapes from the cache.
        let with_cut = store.solve("g", &SnapshotRef::Head, &plan, true).unwrap();
        assert!(with_cut.result.unwrap().0.contingency_set.is_some());
        let without = store.solve("g", &SnapshotRef::Head, &plan, false).unwrap();
        assert!(without.result.unwrap().0.contingency_set.is_none());
        assert_eq!(store.stats().result_hits, 2);
    }

    #[test]
    fn degraded_routed_solves_are_not_cached_and_report_their_tier() {
        let store = Store::new(StoreConfig::default());
        let plan = prepared("ax*b");
        store.put("g", "s a u\nu x v\nv b t\n").unwrap();
        let fingerprint = plan.rpq().language().language_fingerprint();
        // A zero-microsecond budget cannot fit any backend: the store must
        // still answer, with certified bounds and the degradation reported.
        let routed = store
            .route(
                "g",
                &SnapshotRef::Head,
                &plan,
                fingerprint,
                false,
                &RouteBudget::with_cost_budget_us(0),
                &Router::new(),
            )
            .unwrap();
        let (tiered, _) = routed.result.unwrap();
        assert!(tiered.degraded);
        assert_eq!(tiered.tier, "approx");
        assert!(!routed.result_cached);
        // Degraded answers are budget-dependent: they must not poison the
        // cache for an unlimited caller.
        let full = store.solve("g", &SnapshotRef::Head, &plan, false).unwrap();
        let (outcome, _) = full.result.unwrap();
        assert_eq!(outcome.value, ResilienceValue::Finite(1));
        assert_eq!(store.stats().result_hits, 0);
        // And the unlimited answer is cached as usual.
        assert_eq!(value(&store, "g", SnapshotRef::Head, &plan), 1);
        assert_eq!(store.stats().result_hits, 1);
    }

    #[test]
    fn body_limits_and_capacity_are_enforced_with_codes() {
        let store = Store::new(StoreConfig { capacity: 1, max_body_bytes: 16 });
        let err = store.put("g", "a b c # a long oversized body\n").unwrap_err();
        assert_eq!(err.code(), "body_too_large");
        store.put("g", "s a t\n").unwrap();
        let err = store.put("h", "s a t\n").unwrap_err();
        assert_eq!(err.code(), "store_full");
        assert!(err.to_string().contains("1 databases"));
        // Replacing an existing database is always allowed.
        store.put("g", "s b t\n").unwrap();
        let err = store.patch("g", "+ s a t # padded far past the body limit\n").unwrap_err();
        assert_eq!(err.code(), "body_too_large");
        let err = store.patch("nope", "+ s a t\n").unwrap_err();
        assert_eq!(err.code(), "unknown_database");
        let err = store.put("g", "not a fact line\n").unwrap_err();
        assert_eq!(err.code(), "parse");
        let err = store.patch("g", "* bad op\n").unwrap_err();
        assert_eq!(err.code(), "parse");
    }

    #[test]
    fn snapshots_resolve_and_unknown_ones_are_named_in_errors() {
        let store = Store::new(StoreConfig::default());
        store.put("g", "s a t\n").unwrap();
        store.patch("g", "+ s b t\n").unwrap();
        assert_eq!(store.snapshot("g", "v1", Some(SnapshotRef::Offset(1))).unwrap(), 1);
        assert_eq!(store.snapshot("g", "v2", None).unwrap(), 2);
        let (offset, graph) = store.materialize("g", &SnapshotRef::Named("v1".into())).unwrap();
        assert_eq!((offset, graph.num_facts()), (1, 1));
        let err = store.materialize("g", &SnapshotRef::Offset(9)).unwrap_err();
        assert_eq!(err.code(), "unknown_snapshot");
        assert!(err.to_string().contains('9') && err.to_string().contains("\"g\""));
        let err = store.snapshot("g", "v3", Some(SnapshotRef::Named("ghost".into()))).unwrap_err();
        assert_eq!(err.code(), "unknown_snapshot");
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn list_drop_and_stats_report_the_hosted_state() {
        let store = Store::new(StoreConfig::default());
        store.put("b", "s a t\n").unwrap();
        store.put("a", "s a t\ns b t\n").unwrap();
        store.patch("a", "- s b t\n").unwrap();
        store.snapshot("a", "v0", Some(SnapshotRef::Offset(2))).unwrap();
        let infos = store.list();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].name, "a"); // sorted
        assert_eq!(infos[0].snapshot, 3);
        assert_eq!(infos[0].facts, 1); // delete applied
        assert_eq!(infos[0].log_entries, 3);
        assert_eq!(infos[0].named, vec![("v0".to_string(), 2)]);
        assert!(infos[0].log_bytes > 0);
        let stats = store.stats();
        assert_eq!((stats.databases, stats.named_snapshots), (2, 1));
        assert_eq!(stats.log_entries, 4);
        assert!(store.drop_database("b"));
        assert!(!store.drop_database("b"));
        assert_eq!(store.stats().databases, 1);
    }

    #[test]
    fn unnamed_materializations_are_evicted_lru_but_pins_hold() {
        let store = Store::new(StoreConfig { capacity: 3, max_body_bytes: 1 << 20 });
        store.put("g", "s a t\n").unwrap();
        store.patch("g", "+ s b t\n").unwrap();
        store.snapshot("g", "pinned", Some(SnapshotRef::Offset(1))).unwrap();
        // Touch many distinct snapshots: offsets 1 (named) and head stay,
        // unnamed older ones get evicted.
        for i in 0..4 {
            store.patch("g", &format!("+ s c t{i}\n")).unwrap();
            store.materialize("g", &SnapshotRef::Head).unwrap();
        }
        store.materialize("g", &SnapshotRef::Named("pinned".into())).unwrap();
        store.materialize("g", &SnapshotRef::Offset(2)).unwrap();
        let stats = store.stats();
        assert!(stats.materialized <= 3, "{stats:?}");
        assert!(stats.evictions > 0);
        // The pinned snapshot's cache entry survived every eviction pass.
        let info = &store.list()[0];
        assert_eq!(info.named, vec![("pinned".to_string(), 1)]);
    }

    #[test]
    fn store_is_usable_across_threads() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let plan = prepared("ax*b");
        store.put("g", "s a u\nu x v\nv b t\n").unwrap();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let store = Arc::clone(&store);
                let plan = Arc::clone(&plan);
                std::thread::spawn(move || {
                    let name = format!("t{i}");
                    store.put(&name, "s a u\nu x v\nv b t\n").unwrap();
                    store.patch(&name, "- u x v\n").unwrap();
                    let solve = store.solve(&name, &SnapshotRef::Head, &plan, true).unwrap();
                    let (outcome, _) = solve.result.unwrap();
                    assert_eq!(outcome.value, ResilienceValue::Finite(0));
                    assert_eq!(value(&store, "g", SnapshotRef::Head, &plan), 1);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.stats().databases, 5);
    }
}
