//! Data-cleaning scenario: how robust is a compliance violation to repairs?
//!
//! The motivation for resilience in the paper is to quantify how "robust" a
//! query answer is when facts may be wrong or may be deleted. This example
//! plays that out on a small access-control knowledge graph:
//!
//! * `g` edges: a user is **granted** membership of a group,
//! * `d` edges: a group is allowed to **delegate** to another group,
//! * `r` edges: a group can **read** a sensitive dataset.
//!
//! The RPQ `g d* r` holds when some user can reach a sensitive dataset
//! through a chain of delegations — a compliance violation. Its resilience
//! under bag semantics (fact multiplicities = how costly an edge is to
//! revoke) is the minimum total revocation cost needed to eliminate *every*
//! violating path; the contingency set is the cheapest repair.
//!
//! `g d* r` is a local language, so the repair is computed exactly in
//! polynomial time by the Theorem 3.13 reduction to MinCut.
//!
//! Run with `cargo run --example data_cleaning`.

use rpq::graphdb::GraphDb;
use rpq::resilience::algorithms::solve;
use rpq::resilience::classify::classify;
use rpq::resilience::rpq::Rpq;

fn main() {
    // (source, label, target, revocation cost)
    let facts: &[(&str, char, &str, u64)] = &[
        // Grants: cheap to revoke for contractors, expensive for employees.
        ("alice", 'g', "engineering", 5),
        ("bob", 'g', "engineering", 5),
        ("carol", 'g', "contractors", 1),
        ("dave", 'g', "analytics", 3),
        // Delegations between groups.
        ("engineering", 'd', "platform", 2),
        ("contractors", 'd', "platform", 1),
        ("platform", 'd', "data_infra", 2),
        ("analytics", 'd', "data_infra", 4),
        // Read access to sensitive datasets.
        ("data_infra", 'r', "payroll_db", 10),
        ("analytics", 'r', "customer_db", 2),
    ];
    let mut db = GraphDb::new();
    for &(source, label, target, cost) in facts {
        let s = db.node(source);
        let t = db.node(target);
        db.add_fact_with_multiplicity(s, label.into(), t, cost);
    }
    println!("Access-control graph ({} facts):", db.num_facts());
    println!("{db}");

    let query = Rpq::parse("g d* r").expect("valid RPQ").with_bag_semantics();
    println!("violation query: {query}");
    println!("violation present: {}", query.holds_on(&db));
    println!("classification: {}", classify(query.language()).label());

    let outcome = solve(&query, &db).expect("resilience computation");
    println!("\nminimum total revocation cost (bag resilience) = {}", outcome.value);
    if let Some(repair) = &outcome.contingency_set {
        println!("cheapest repair (an optimal contingency set):");
        let mut total = 0u64;
        for &fact in repair {
            total += db.multiplicity(fact);
            println!("  revoke {} (cost {})", db.display_fact(fact), db.multiplicity(fact));
        }
        println!("  total cost {total}");
        // The repair really eliminates every violating path.
        let repaired = db.without_facts(&repair.iter().copied().collect());
        assert!(!query.holds_on(&repaired));
        println!("after the repair the violation query no longer holds ✓");
    }

    // Set semantics instead answers: how many *edges* must be wrong for the
    // violation to disappear? (All costs are treated as 1.)
    let set_query = Rpq::parse("g d* r").unwrap();
    let set_outcome = solve(&set_query, &db).expect("resilience computation");
    println!("\nset-semantics resilience (number of facts) = {}", set_outcome.value);

    // A higher resilience means the violation is more entrenched: compare the
    // same database after an extra, independent delegation path is added.
    let mut hardened = db.clone();
    let eng = hardened.node("engineering");
    let shadow = hardened.node("shadow_it");
    let infra = hardened.node("data_infra");
    hardened.add_fact_with_multiplicity(eng, 'd'.into(), shadow, 1);
    hardened.add_fact_with_multiplicity(shadow, 'd'.into(), infra, 1);
    let hardened_outcome = solve(&query, &hardened).expect("resilience computation");
    println!(
        "after adding a shadow delegation path the repair cost grows: {} → {}",
        outcome.value, hardened_outcome.value
    );
}
