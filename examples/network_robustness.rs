//! Network robustness: the MinCut ⇔ resilience correspondence from the
//! paper's introduction.
//!
//! The resilience of the RPQ `a x* b` in bag semantics on a database whose
//! `a`-facts mark sources, `b`-facts mark sinks and `x`-facts are capacitated
//! edges is exactly the classical minimum cut of the flow network. This
//! example builds a random multi-source / multi-sink network, computes both
//! quantities independently, and prints the optimal cut.
//!
//! Run with `cargo run --example network_robustness`.

use rpq::flow::{Capacity, FlowAlgorithm, FlowNetwork};
use rpq::graphdb::generate::flow_instance;
use rpq::resilience::algorithms::Algorithm;
use rpq::resilience::engine::{Engine, SolveOptions};
use rpq::resilience::rpq::Rpq;
use std::collections::BTreeMap;

fn main() {
    let db = flow_instance(4, 3, 2, 8, 2024);
    println!(
        "flow-shaped database: {} facts, total capacity {}",
        db.num_facts(),
        db.total_multiplicity()
    );

    // Resilience of a x* b under bag semantics. Any MinCut backend of
    // `rpq-flow` can power the reduction; pick push–relabel here to show the
    // engine's `SolveOptions` (the value is backend-independent).
    let query = Rpq::parse("a x* b").unwrap().with_bag_semantics();
    let engine = Engine::with_options(SolveOptions {
        flow_backend: FlowAlgorithm::PushRelabel,
        ..Default::default()
    });
    let outcome = engine.solve(&query, &db).expect("resilience computation");
    assert_eq!(outcome.algorithm, Algorithm::Local);
    println!("resilience of a x* b (bag semantics) = {}", outcome.value);

    // Build the corresponding classical flow network by hand: one vertex per
    // database node, plus a super-source feeding the sources of `a`-facts and
    // a super-sink fed by the targets of `b`-facts.
    let mut network = FlowNetwork::new();
    let mut vertex_of = BTreeMap::new();
    for node in db.nodes() {
        vertex_of.insert(node, network.add_vertex());
    }
    let source = network.add_vertex();
    let sink = network.add_vertex();
    network.set_source(source);
    network.set_target(sink);
    for (id, fact) in db.facts() {
        let capacity = Capacity::Finite(db.multiplicity(id) as u128);
        match fact.label.as_char() {
            'a' => {
                network.add_edge(source, vertex_of[&fact.source], Capacity::Infinite);
                network.add_edge(vertex_of[&fact.source], vertex_of[&fact.target], capacity);
            }
            'b' => {
                network.add_edge(vertex_of[&fact.source], vertex_of[&fact.target], capacity);
                network.add_edge(vertex_of[&fact.target], sink, Capacity::Infinite);
            }
            _ => {
                network.add_edge(vertex_of[&fact.source], vertex_of[&fact.target], capacity);
            }
        }
    }
    let cut = rpq::flow::min_cut(&network);
    println!("classical MinCut value                = {}", cut.value);

    // The two computations agree (this is the content of the correspondence).
    let resilience = outcome.value.finite().expect("finite resilience");
    let mincut = cut.value.finite().expect("finite cut");
    assert_eq!(resilience, mincut, "resilience must equal the minimum cut");
    println!("the resilience equals the minimum cut, as claimed in the introduction");

    if let Some(facts) = outcome.contingency_set {
        println!("an optimal set of facts to remove ({}):", facts.len());
        for fact in facts {
            println!("  {} (capacity {})", db.display_fact(fact), db.multiplicity(fact));
        }
    }
}
