//! Hardness-gadget explorer: mechanically verifies the paper's gadgets
//! (Definition 4.9) and runs the vertex-cover reduction of Proposition 4.11
//! end to end on a small graph.
//!
//! Run with `cargo run --example gadget_explorer`.

use rpq::automata::Language;
use rpq::resilience::algorithms::{solve_with, Algorithm};
use rpq::resilience::gadgets::library;
use rpq::resilience::reductions::{subdivision_vertex_cover_number, UndirectedGraph};
use rpq::resilience::rpq::Rpq;

fn main() {
    let gadgets: Vec<(&str, rpq::resilience::gadgets::PreGadget, &str)> = vec![
        ("aa", library::gadget_aa(), "Figure 3b / Proposition 4.1"),
        ("aaa", library::gadget_aaa(), "Figure 10 / Claim 6.11"),
        ("axb|cxd", library::gadget_axb_cxd(), "Figure 4a / Proposition 4.13"),
        ("ab|bc|ca", library::gadget_ab_bc_ca(), "Figure 13 / Proposition 7.4"),
    ];

    println!("Mechanical verification of the paper's hardness gadgets");
    println!("{:<12} {:<32} {:>9} {:>12}", "language", "source", "matches", "path length");
    println!("{}", "-".repeat(70));
    for (pattern, gadget, source) in &gadgets {
        let language = Language::parse(pattern).unwrap();
        let report = gadget.verify(&language);
        assert!(report.is_valid, "gadget for {pattern} failed verification: {:?}", report.failure);
        println!(
            "{:<12} {:<32} {:>9} {:>12}",
            pattern,
            source,
            report.num_matches,
            report.path_length.unwrap()
        );
    }

    // End-to-end hardness reduction: encode a 5-cycle with the aa gadget and
    // check that the resilience matches the vertex-cover prediction.
    println!("\nVertex-cover reduction (Proposition 4.11) with the aa gadget:");
    let gadget = library::gadget_aa();
    let language = Language::parse("aa").unwrap();
    let ell = gadget.verify(&language).path_length.unwrap();
    let graph = UndirectedGraph::cycle(5);
    let encoding = gadget.encode_graph(&graph);
    println!(
        "  C5 encoded as a database with {} nodes and {} facts",
        encoding.num_nodes(),
        encoding.num_facts()
    );
    let resilience =
        solve_with(Algorithm::ExactBranchAndBound, &Rpq::new(language), &encoding).unwrap();
    let predicted = subdivision_vertex_cover_number(&graph, ell);
    println!("  vertex cover number of C5      = {}", graph.vertex_cover_number());
    println!("  predicted resilience (Prp 4.2) = {predicted}");
    println!("  measured resilience            = {}", resilience.value);
    assert_eq!(resilience.value.finite().unwrap(), predicted as u128);
    println!("  the reduction checks out: resilience = vc(G) + m(ℓ−1)/2 with ℓ = {ell}");
}
