//! Reproduces Figure 1 of the paper: the classification of every example
//! language into PTIME / NP-hard / unclassified, re-derived from the
//! implemented decision procedures.
//!
//! Run with `cargo run --example classify_figure1`.

use rpq::automata::Language;
use rpq::resilience::classify::{classify_with_neutral_letter, figure1_rows};

fn main() {
    println!("Figure 1 — complexity of resilience for the paper's example languages");
    println!("{:<16} {:<44} expected region", "language", "computed classification");
    println!("{}", "-".repeat(110));
    let mut agreements = 0;
    let rows = figure1_rows();
    for row in &rows {
        println!("{:<16} {:<44} {}", row.pattern, row.computed.label(), row.expected);
        let agrees = match row.expected {
            e if e.starts_with("PTIME") => row.computed.is_tractable(),
            e if e.starts_with("NP-hard") => row.computed.is_np_hard(),
            _ => row.computed.is_unclassified(),
        };
        if agrees {
            agreements += 1;
        }
    }
    println!("{}", "-".repeat(110));
    println!("{agreements}/{} languages classified in the region stated by the paper", rows.len());

    // Proposition 5.7: with a neutral letter the classification is a dichotomy.
    println!("\nNeutral-letter dichotomy (Proposition 5.7):");
    for pattern in ["e*be*ce*|e*de*fe*", "e*(a|c)e*(a|d)e*", "e*ae*"] {
        let language = Language::parse(pattern).unwrap();
        let verdict = classify_with_neutral_letter(&language)
            .expect("these languages have the neutral letter e");
        println!("  {:<22} {}", pattern, verdict.label());
    }
}
