//! Hardness certificates: derive a mechanically verified gadget for a hard
//! language by following the case analysis of Theorems 5.3 and 6.1, then run
//! the vertex-cover reduction it implies (Proposition 4.11) end to end.
//!
//! This is the programmatic counterpart of `gadget_explorer` (which verifies
//! the *fixed* gadgets drawn in the paper's figures): here the gadgets are
//! built from the language itself — stable four-legged legs (Figure 5),
//! maximal-gap words (Figures 7–8), `aba`/`bab` or `aaδ` patterns
//! (Figures 9 and 11), or the Proposition 7.11 constructions (Figures 15–16).
//!
//! Run with `cargo run --example hardness_certificates`.

use rpq::automata::Language;
use rpq::resilience::algorithms::{solve_with, Algorithm};
use rpq::resilience::classify::classify;
use rpq::resilience::gadgets::families::find_gadget;
use rpq::resilience::reductions::{subdivision_vertex_cover_number, UndirectedGraph};
use rpq::resilience::rpq::{ResilienceValue, Rpq};

fn main() {
    let patterns = [
        "aa",
        "aaa",
        "aab",
        "baa",
        "abca",
        "abcab",
        "aba|bab",
        "axb|cxd",
        "aexb|cexd",
        "ab|bc|ca",
        "abcd|be|ef",
        "abcd|bef",
        // Documented gaps: Figure 6 (Thm 5.3 Case 2) and Figure 12 (Claim
        // 6.13) are not transcribed, so these two may report "no gadget".
        "aaaa",
        "abca|cab",
    ];

    println!("Deriving mechanically verified hardness certificates");
    println!(
        "{:<14} {:<34} {:<26} {:>8} {:>7}",
        "language", "classification", "gadget family", "matches", "ℓ"
    );
    println!("{}", "-".repeat(95));
    for pattern in patterns {
        let language = Language::parse(pattern).unwrap();
        let classification = classify(&language);
        match find_gadget(&language) {
            Some(found) => {
                let mirror_note = if found.for_mirror { " (via mirror)" } else { "" };
                println!(
                    "{:<14} {:<34} {:<26} {:>8} {:>7}",
                    pattern,
                    classification.label(),
                    format!("{:?}{}", found.family, mirror_note),
                    found.report.num_matches,
                    found.report.path_length.unwrap()
                );
            }
            None => {
                println!(
                    "{:<14} {:<34} {:<26} {:>8} {:>7}",
                    pattern,
                    classification.label(),
                    "(no transcribed family)",
                    "-",
                    "-"
                );
            }
        }
    }

    // End-to-end reduction with a derived (not hand-drawn) gadget: encode a
    // 4-cycle with the certificate found for `aab` and check Proposition 4.2.
    println!("\nVertex-cover reduction with the derived gadget for `aab`:");
    let language = Language::parse("aab").unwrap();
    let certificate = find_gadget(&language).expect("aab has a verified gadget");
    let ell = certificate.report.path_length.unwrap();
    println!(
        "  family {:?} ({}), condensed odd path of length ℓ = {ell}",
        certificate.family,
        certificate.family.paper_result()
    );
    let graph = UndirectedGraph::cycle(4);
    let encoding = certificate.gadget.encode_graph(&graph);
    let query = Rpq::new(language);
    let resilience = solve_with(Algorithm::ExactBranchAndBound, &query, &encoding).unwrap().value;
    let expected = subdivision_vertex_cover_number(&graph, ell);
    println!(
        "  C4 encoding: {} facts, resilience = {resilience}, vc(C4) + m(ℓ−1)/2 = {expected}",
        encoding.num_facts()
    );
    assert_eq!(resilience, ResilienceValue::Finite(expected as u128));
    println!("  Proposition 4.2 identity holds ✓");
}
