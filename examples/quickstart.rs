//! Quickstart: define an RPQ, prepare it once with the engine, and compute
//! its resilience on several databases.
//!
//! Run with `cargo run --example quickstart`.

use rpq::graphdb::GraphDb;
use rpq::resilience::classify::classify;
use rpq::resilience::engine::Engine;
use rpq::resilience::rpq::Rpq;

fn main() {
    // A small "road network" labeled database: `a` edges enter the network,
    // `x` edges are internal roads, `b` edges reach the destinations.
    let mut db = GraphDb::new();
    db.add_fact_by_names("depot_1", 'a', "hub_north");
    db.add_fact_by_names("depot_2", 'a', "hub_south");
    db.add_fact_by_names("hub_north", 'x', "junction");
    db.add_fact_by_names("hub_south", 'x', "junction");
    db.add_fact_by_names("junction", 'x', "ring");
    db.add_fact_by_names("ring", 'b', "store_east");
    db.add_fact_by_names("ring", 'b', "store_west");
    println!("{db}");

    // The query a x* b asks: is some store reachable from some depot?
    let query = Rpq::parse("a x* b").expect("valid regular expression");
    println!("query: {query}");
    println!("the query holds: {}", query.holds_on(&db));

    // The classifier tells us this language is tractable (it is local).
    let classification = classify(query.language());
    println!("classification: {}", classification.label());

    // Prepare the query once: the engine classifies it, builds the product
    // automaton, and fixes the algorithm. The plan report says why.
    let engine = Engine::new();
    let prepared = engine.prepare(&query).expect("query analysis");
    println!("plan: {}", prepared.plan());

    // Resilience: how many facts must fail before no store is reachable?
    let outcome = prepared.solve(&db).expect("resilience computation");
    println!("resilience = {} (algorithm: {:?})", outcome.value, outcome.algorithm);
    if let Some(cut) = &outcome.contingency_set {
        println!("an optimal contingency set:");
        for &fact in cut {
            println!("  remove {}", db.display_fact(fact));
        }
    }

    // The same prepared plan solves any number of databases — no per-call
    // reclassification. Bag semantics needs its own prepared query: make one
    // internal road very expensive to break.
    let mut weighted = db.clone();
    let junction = weighted.find_node("junction").unwrap();
    let ring = weighted.find_node("ring").unwrap();
    let critical = weighted.find_fact(junction, 'x'.into(), ring).unwrap();
    weighted.set_multiplicity(critical, 50);
    let bag_query = Rpq::parse("a x* b").unwrap().with_bag_semantics();
    let prepared = engine.prepare(&bag_query).expect("query analysis");
    for (name, db) in [("original", &db), ("reinforced", &weighted)] {
        let outcome = prepared.solve(db).expect("resilience computation");
        println!("bag-semantics resilience ({name} network) = {}", outcome.value);
    }
}
