//! Facade crate re-exporting the `rpq-resilience` workspace.
//!
//! See the individual crates for details:
//! - [`automata`]: formal-language substrate (regexes, NFAs/DFAs, locality, four-legged tests)
//! - [`graphdb`]: edge-labeled graph databases with bag semantics
//! - [`flow`]: max-flow / min-cut
//! - [`resilience`]: resilience algorithms, hardness gadgets, and the classifier

#![forbid(unsafe_code)]
pub use rpq_automata as automata;
pub use rpq_flow as flow;
pub use rpq_graphdb as graphdb;
pub use rpq_resilience as resilience;
